#ifndef DATASPREAD_EXEC_OPERATORS_H_
#define DATASPREAD_EXEC_OPERATORS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "exec/aggregates.h"
#include "exec/row_batch.h"
#include "sql/ast.h"
#include "types/value.h"

namespace dataspread {

/// Pull operator with two drive modes over one tree.
///
/// Open() prepares state; then the *driver* picks exactly one contract and
/// sticks with it for the whole execution:
///   - Next(Row*): the Volcano row-at-a-time baseline — one output tuple per
///     call, false at end of stream;
///   - Next(RowBatch*): the vectorized pipeline — fills `out` (column-major,
///     up to out->capacity() tuples, possibly with a selection vector) and
///     returns true iff the batch holds at least one live tuple.
/// Operators propagate the chosen mode to their children (a batch-driven
/// aggregate drains its child in batches), so the mode decision stays at the
/// root. Blocking operators (joins' build sides, sort, aggregate, limit's
/// offset skip) defer child-draining work from Open() to the first Next() so
/// the mode is known when it happens. Mixing modes on one opened tree is
/// unsupported.
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  virtual Result<bool> Next(Row* out) = 0;
  virtual Result<bool> Next(RowBatch* out) = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Ordered scan over a catalog table (display order). `start`/`count`
/// implement the interface-aware LIMIT/OFFSET pushdown: a pane fetch reads
/// exactly the window's tuples (paper §2.2 "Window").
///
/// The batch path fills column vectors straight from the storage layer's
/// zero-materialization visitor (Table::VisitWindow -> VisitRows page
/// cursors): one value copy from the pinned page into the batch, no
/// intermediate Row. The row path fetches GetWindow slices of
/// `row_batch_hint` tuples (the pre-vectorization behavior).
class TableScanOp : public Operator {
 public:
  TableScanOp(const Table* table, size_t start, size_t count,
              size_t row_batch_hint = kDefaultExecBatchSize);
  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

  /// Re-targets the scan to display window [start, start+count) and rewinds
  /// it — the morsel-parallel path re-aims one scan per morsel instead of
  /// constructing an operator chain per morsel (src/exec/morsel.cc).
  void SetWindow(size_t start, size_t count);

 private:
  const Table* table_;
  size_t start_, remaining_, next_pos_ = 0;
  size_t row_batch_hint_;
  std::vector<Row> batch_;
  size_t batch_index_ = 0;
};

/// Scan over materialized rows (RANGETABLE contents, join build sides, ...).
/// The batch path moves values out of the shared vector into batch columns
/// instead of copying a Row per call; the vector's tuples must not be read
/// again after the scan (each plan materializes its own copy).
class RowsScanOp : public Operator {
 public:
  explicit RowsScanOp(std::shared_ptr<std::vector<Row>> rows)
      : rows_(std::move(rows)) {}
  Status Open() override {
    index_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    if (index_ >= rows_->size()) return false;
    *out = (*rows_)[index_++];
    return true;
  }
  Result<bool> Next(RowBatch* out) override;

 private:
  std::shared_ptr<std::vector<Row>> rows_;
  size_t index_ = 0;
};

/// Emits input rows for which the (bound) predicate is TRUE. The batch path
/// narrows the child batch's selection vector in place — no tuple is copied.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, const sql::Expr* predicate)
      : child_(std::move(child)), predicate_(predicate) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  OperatorPtr child_;
  const sql::Expr* predicate_;
  std::vector<uint32_t> scratch_positions_;
};

/// Evaluates one (bound) expression per output column; vectorized per batch.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<const sql::Expr*> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  OperatorPtr child_;
  std::vector<const sql::Expr*> exprs_;
  RowBatch input_;
  std::vector<uint32_t> scratch_positions_;
};

/// Nested-loop join; supports CROSS (no condition), INNER, and LEFT OUTER.
/// The right input is materialized at the first Next(). The batch path
/// evaluates the join condition vectorized: for each left tuple it builds a
/// combined batch (left values broadcast against a chunk of right tuples)
/// and filters it with one EvalPredicateBatch call.
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, const sql::Expr* on,
                   bool left_outer, size_t right_width);
  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  Status BuildRightRows();
  Status BuildRightBatched(size_t batch_size);
  /// Pulls the next live left tuple into left_row_ (from the child batch in
  /// batch mode). Returns false at end of the left stream.
  Result<bool> AdvanceLeftBatched();

  OperatorPtr left_, right_;
  const sql::Expr* on_;  // may be null (cross join)
  bool left_outer_;
  size_t right_width_;
  bool right_built_ = false;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  bool left_matched_ = false;
  size_t right_index_ = 0;
  // Batch-mode state.
  RowBatch left_batch_;
  std::vector<uint32_t> left_positions_;
  size_t left_cursor_ = 0;  // index into left_positions_
  RowBatch combined_;
  std::vector<uint32_t> combined_positions_, passing_;
};

/// Equi hash join on column offsets; builds a hash table over the right
/// input at the first Next(). INNER or LEFT OUTER. The batch path probes a
/// whole left batch per iteration and emits combined tuples column-wise.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::vector<int> left_keys,
             std::vector<int> right_keys, bool left_outer, size_t right_width);
  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  Status BuildRows();
  Status BuildBatched(size_t batch_size);
  Result<bool> AdvanceLeftBatched();

  OperatorPtr left_, right_;
  std::vector<int> left_keys_, right_keys_;
  bool left_outer_;
  size_t right_width_;
  bool built_ = false;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> build_;
  Row left_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
  bool have_left_ = false;
  bool left_matched_ = false;
  // Batch-mode state.
  RowBatch left_batch_;
  std::vector<uint32_t> left_positions_;
  size_t left_cursor_ = 0;
};

/// One aggregation group: the first input row seen (non-aggregate parts of
/// the output expressions evaluate against it) plus one running state per
/// aggregate call. Shared between the serial HashAggregateOp and the
/// morsel-parallel partial-aggregate merge (src/exec/morsel.h).
struct AggGroup {
  Row first_row;
  std::vector<AggState> states;
};

/// The aggregate finalization tail, shared by the serial and parallel paths:
/// for each group (in the given order) finalizes its states, applies
/// `having` (groups failing it are dropped), and evaluates `output_exprs`
/// — aggregate call sites replaced by finalized values, everything else
/// evaluated on the group's first row — appending one row per surviving
/// group to `results`. Callers synthesize the empty-input global group
/// before calling.
Status FinalizeAggregateGroups(
    const std::vector<const sql::Expr*>& output_exprs, const sql::Expr* having,
    const std::vector<AggGroup*>& groups, std::vector<Row>* results);

/// Blocking hash aggregation. Groups by `group_exprs`; for each group the
/// output row is `output_exprs` evaluated with aggregate call sites replaced
/// by their finalized values and non-aggregate parts evaluated on the group's
/// first input row. `having` (optional) filters groups. With no group
/// expressions, produces exactly one (possibly empty-input) global group.
/// The batch build evaluates group keys and aggregate arguments vectorized —
/// one expression pass per batch instead of per row.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<const sql::Expr*> group_exprs,
                  std::vector<sql::Expr*> agg_calls,
                  std::vector<const sql::Expr*> output_exprs,
                  const sql::Expr* having);
  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  using Group = AggGroup;
  using GroupMap = std::unordered_map<Row, Group, RowHash, RowEq>;

  Status BuildRows();
  Status BuildBatched(size_t batch_size);
  /// Shared tail: synthesizes the empty-input global group, finalizes groups
  /// (in first-seen order), applies HAVING, and evaluates the output
  /// expressions into results_.
  Status ExtractResults(GroupMap* groups, std::vector<Row>* group_order);

  OperatorPtr child_;
  std::vector<const sql::Expr*> group_exprs_;
  std::vector<sql::Expr*> agg_calls_;
  std::vector<const sql::Expr*> output_exprs_;
  const sql::Expr* having_;
  bool built_ = false;
  std::vector<Row> results_;
  size_t index_ = 0;
  RowBatch input_;
};

/// Blocking sort. Keys are expressions over the child's rows; the batch
/// build computes key tuples vectorized per input batch.
class SortOp : public Operator {
 public:
  struct Key {
    const sql::Expr* expr;
    bool descending;
  };
  SortOp(OperatorPtr child, std::vector<Key> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  Status BuildRows();
  Status BuildBatched(size_t batch_size);
  Status SortCollected(std::vector<Row> keys);

  OperatorPtr child_;
  std::vector<Key> keys_;
  bool built_ = false;
  std::vector<Row> rows_;
  size_t index_ = 0;
  RowBatch input_;
};

/// OFFSET/LIMIT. The offset rows are skipped at the first Next() (batch mode
/// slices whole batches past the offset instead of pulling row by row).
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit, int64_t offset)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  OperatorPtr child_;
  int64_t limit_;   // -1 = unlimited
  int64_t offset_;
  int64_t emitted_ = 0;
  int64_t to_skip_ = 0;
  bool skipped_ = false;
};

/// Row-level DISTINCT. The batch path narrows the selection to first
/// occurrences.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child) : child_(std::move(child)) {}
  Status Open() override {
    seen_.clear();
    return child_->Open();
  }
  Result<bool> Next(Row* out) override;
  Result<bool> Next(RowBatch* out) override;

 private:
  OperatorPtr child_;
  std::unordered_map<Row, bool, RowHash, RowEq> seen_;
  std::vector<uint32_t> scratch_positions_;
};

/// Drains an operator tree into a vector, row at a time (the baseline path).
Result<std::vector<Row>> Materialize(Operator* op);

/// Drains an operator tree into a vector through the batch contract with
/// batches of `batch_size` tuples.
Result<std::vector<Row>> MaterializeBatched(Operator* op, size_t batch_size);

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_OPERATORS_H_
