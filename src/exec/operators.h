#ifndef DATASPREAD_EXEC_OPERATORS_H_
#define DATASPREAD_EXEC_OPERATORS_H_

#include <memory>
#include <unordered_map>
#include <vector>

#include "catalog/table.h"
#include "common/result.h"
#include "exec/aggregates.h"
#include "sql/ast.h"
#include "types/value.h"

namespace dataspread {

/// Volcano-style pull operator. Open() prepares state; Next() produces one
/// output row at a time (returns false at end of stream).
class Operator {
 public:
  virtual ~Operator() = default;
  virtual Status Open() = 0;
  virtual Result<bool> Next(Row* out) = 0;
};

using OperatorPtr = std::unique_ptr<Operator>;

/// Ordered scan over a catalog table (display order), fetching tuples in
/// batches through the positional index. `start`/`count` implement the
/// interface-aware LIMIT/OFFSET pushdown: a pane fetch reads exactly the
/// window's tuples (paper §2.2 "Window").
class TableScanOp : public Operator {
 public:
  TableScanOp(const Table* table, size_t start, size_t count);
  Status Open() override;
  Result<bool> Next(Row* out) override;

 private:
  static constexpr size_t kBatch = 512;
  const Table* table_;
  size_t start_, remaining_, next_pos_ = 0;
  std::vector<Row> batch_;
  size_t batch_index_ = 0;
};

/// Scan over materialized rows (RANGETABLE contents, join build sides, ...).
class RowsScanOp : public Operator {
 public:
  explicit RowsScanOp(std::shared_ptr<std::vector<Row>> rows)
      : rows_(std::move(rows)) {}
  Status Open() override {
    index_ = 0;
    return Status::OK();
  }
  Result<bool> Next(Row* out) override {
    if (index_ >= rows_->size()) return false;
    *out = (*rows_)[index_++];
    return true;
  }

 private:
  std::shared_ptr<std::vector<Row>> rows_;
  size_t index_ = 0;
};

/// Emits input rows for which the (bound) predicate is TRUE.
class FilterOp : public Operator {
 public:
  FilterOp(OperatorPtr child, const sql::Expr* predicate)
      : child_(std::move(child)), predicate_(predicate) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;

 private:
  OperatorPtr child_;
  const sql::Expr* predicate_;
};

/// Evaluates one (bound) expression per output column.
class ProjectOp : public Operator {
 public:
  ProjectOp(OperatorPtr child, std::vector<const sql::Expr*> exprs)
      : child_(std::move(child)), exprs_(std::move(exprs)) {}
  Status Open() override { return child_->Open(); }
  Result<bool> Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::vector<const sql::Expr*> exprs_;
};

/// Nested-loop join; supports CROSS (no condition), INNER, and LEFT OUTER.
/// The right input is materialized at Open().
class NestedLoopJoinOp : public Operator {
 public:
  NestedLoopJoinOp(OperatorPtr left, OperatorPtr right, const sql::Expr* on,
                   bool left_outer, size_t right_width);
  Status Open() override;
  Result<bool> Next(Row* out) override;

 private:
  OperatorPtr left_, right_;
  const sql::Expr* on_;  // may be null (cross join)
  bool left_outer_;
  size_t right_width_;
  std::vector<Row> right_rows_;
  Row left_row_;
  bool have_left_ = false;
  bool left_matched_ = false;
  size_t right_index_ = 0;
};

/// Equi hash join on column offsets; builds a hash table over the right
/// input. INNER or LEFT OUTER.
class HashJoinOp : public Operator {
 public:
  HashJoinOp(OperatorPtr left, OperatorPtr right, std::vector<int> left_keys,
             std::vector<int> right_keys, bool left_outer, size_t right_width);
  Status Open() override;
  Result<bool> Next(Row* out) override;

 private:
  OperatorPtr left_, right_;
  std::vector<int> left_keys_, right_keys_;
  bool left_outer_;
  size_t right_width_;
  std::unordered_map<Row, std::vector<Row>, RowHash, RowEq> build_;
  Row left_row_;
  const std::vector<Row>* matches_ = nullptr;
  size_t match_index_ = 0;
  bool have_left_ = false;
  bool left_matched_ = false;
};

/// Blocking hash aggregation. Groups by `group_exprs`; for each group the
/// output row is `output_exprs` evaluated with aggregate call sites replaced
/// by their finalized values and non-aggregate parts evaluated on the group's
/// first input row. `having` (optional) filters groups. With no group
/// expressions, produces exactly one (possibly empty-input) global group.
class HashAggregateOp : public Operator {
 public:
  HashAggregateOp(OperatorPtr child, std::vector<const sql::Expr*> group_exprs,
                  std::vector<sql::Expr*> agg_calls,
                  std::vector<const sql::Expr*> output_exprs,
                  const sql::Expr* having);
  Status Open() override;
  Result<bool> Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::vector<const sql::Expr*> group_exprs_;
  std::vector<sql::Expr*> agg_calls_;
  std::vector<const sql::Expr*> output_exprs_;
  const sql::Expr* having_;
  std::vector<Row> results_;
  size_t index_ = 0;
};

/// Blocking sort. Keys are expressions over the child's rows.
class SortOp : public Operator {
 public:
  struct Key {
    const sql::Expr* expr;
    bool descending;
  };
  SortOp(OperatorPtr child, std::vector<Key> keys)
      : child_(std::move(child)), keys_(std::move(keys)) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::vector<Key> keys_;
  std::vector<Row> rows_;
  size_t index_ = 0;
};

/// OFFSET/LIMIT.
class LimitOp : public Operator {
 public:
  LimitOp(OperatorPtr child, int64_t limit, int64_t offset)
      : child_(std::move(child)), limit_(limit), offset_(offset) {}
  Status Open() override;
  Result<bool> Next(Row* out) override;

 private:
  OperatorPtr child_;
  int64_t limit_;   // -1 = unlimited
  int64_t offset_;
  int64_t emitted_ = 0;
};

/// Row-level DISTINCT.
class DistinctOp : public Operator {
 public:
  explicit DistinctOp(OperatorPtr child) : child_(std::move(child)) {}
  Status Open() override {
    seen_.clear();
    return child_->Open();
  }
  Result<bool> Next(Row* out) override;

 private:
  OperatorPtr child_;
  std::unordered_map<Row, bool, RowHash, RowEq> seen_;
};

/// Drains an operator tree into a vector.
Result<std::vector<Row>> Materialize(Operator* op);

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_OPERATORS_H_
