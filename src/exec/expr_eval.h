#ifndef DATASPREAD_EXEC_EXPR_EVAL_H_
#define DATASPREAD_EXEC_EXPR_EVAL_H_

#include <vector>

#include "common/result.h"
#include "sql/ast.h"
#include "types/value.h"

namespace dataspread {

/// Evaluates a *bound* expression over one input row.
///
/// `agg_values`, when non-null, supplies the finalized value for each
/// aggregate call site (indexed by Expr::aggregate_index); this is how
/// post-aggregation expressions like `AVG(g) + 1` are computed.
///
/// SQL NULL semantics: arithmetic and comparisons propagate NULL; AND/OR use
/// three-valued logic (represented by a NULL Value).
Result<Value> EvalScalar(const sql::Expr& e, const Row* input,
                         const std::vector<Value>* agg_values = nullptr);

/// WHERE/HAVING acceptance: true iff the expression evaluates to TRUE
/// (NULL and FALSE both reject).
Result<bool> EvalPredicate(const sql::Expr& e, const Row* input,
                           const std::vector<Value>* agg_values = nullptr);

/// SQL LIKE with `%` (any run) and `_` (any single character).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_EXPR_EVAL_H_
