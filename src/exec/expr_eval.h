#ifndef DATASPREAD_EXEC_EXPR_EVAL_H_
#define DATASPREAD_EXEC_EXPR_EVAL_H_

#include <cstdint>
#include <vector>

#include "common/result.h"
#include "exec/row_batch.h"
#include "sql/ast.h"
#include "types/value.h"

namespace dataspread {

/// Evaluates a *bound* expression over one input row.
///
/// `agg_values`, when non-null, supplies the finalized value for each
/// aggregate call site (indexed by Expr::aggregate_index); this is how
/// post-aggregation expressions like `AVG(g) + 1` are computed.
///
/// SQL NULL semantics: arithmetic and comparisons propagate NULL; AND/OR use
/// three-valued logic (represented by a NULL Value).
Result<Value> EvalScalar(const sql::Expr& e, const Row* input,
                         const std::vector<Value>* agg_values = nullptr);

/// WHERE/HAVING acceptance: true iff the expression evaluates to TRUE
/// (NULL and FALSE both reject).
Result<bool> EvalPredicate(const sql::Expr& e, const Row* input,
                           const std::vector<Value>* agg_values = nullptr);

/// Vectorized evaluation: computes `e` for every position listed in `active`
/// over `batch`, writing each result into `(*out)[pos]` (`out` is resized to
/// batch.size(); positions outside `active` are NULL). Operator codes and
/// arity checks resolve once per node per batch instead of once per row —
/// the core of the batch pipeline's expression win.
///
/// Semantics are shared with EvalScalar through common per-value kernels,
/// including lazy evaluation: AND/OR right sides, CASE branches, and IN-list
/// items are evaluated only at the positions the row-at-a-time path would
/// reach them, so data-dependent errors (e.g. `x <> 0 AND 1/x > 2`) surface
/// for exactly the same inputs. Aggregate call sites are rejected (batches
/// only flow below the aggregation boundary).
Status EvalScalarBatch(const sql::Expr& e, const RowBatch& batch,
                       const std::vector<uint32_t>& active,
                       std::vector<Value>* out);

/// Vectorized WHERE/HAVING/ON acceptance: appends to `passing` the subset of
/// `active` positions where `e` evaluates to TRUE (NULL and FALSE reject).
Status EvalPredicateBatch(const sql::Expr& e, const RowBatch& batch,
                          const std::vector<uint32_t>& active,
                          std::vector<uint32_t>* passing);

/// Folds constant subtrees of a *bound* expression into literals, in place.
/// A subtree folds only when it is pure (no column refs, range values, or
/// aggregate calls) and its evaluation succeeds — an erroring constant
/// (e.g. `1/0` inside a CASE branch that may never be taken) is left for
/// runtime so error behavior is position-exact. Planner calls this after
/// binding; both execution modes benefit equally.
void FoldConstants(sql::Expr* e);

/// SQL LIKE with `%` (any run) and `_` (any single character).
bool LikeMatch(std::string_view text, std::string_view pattern);

}  // namespace dataspread

#endif  // DATASPREAD_EXEC_EXPR_EVAL_H_
