#include "exec/planner.h"

#include <limits>

#include "common/str_util.h"
#include "exec/binder.h"
#include "exec/expr_eval.h"
#include "exec/morsel.h"

namespace dataspread {

namespace {

using sql::Expr;
using sql::ExprKind;
using sql::ExprPtr;
using sql::JoinType;
using sql::SelectStmt;

constexpr size_t kScanAll = std::numeric_limits<size_t>::max();

/// Builds the scan operator for a bound source.
OperatorPtr MakeScan(const BoundSource& src, size_t start, size_t count,
                     size_t batch_size) {
  if (src.table != nullptr) {
    return std::make_unique<TableScanOp>(src.table, start, count, batch_size);
  }
  auto rows = std::make_shared<std::vector<Row>>(src.range->rows);
  // Window pushdown for ranges is handled by LimitOp upstream; ranges are
  // already materialized so there is nothing to save.
  (void)start;
  (void)count;
  return std::make_unique<RowsScanOp>(std::move(rows));
}

/// Collects `expr` conjuncts that are `col = col` equalities usable by a hash
/// join across the given boundary. Returns false if any conjunct is not such
/// an equality (caller falls back to a nested loop).
bool ExtractEquiKeys(const Expr& e, size_t left_width, std::vector<int>* lk,
                     std::vector<int>* rk) {
  if (e.kind == ExprKind::kBinary && e.op == "AND") {
    return ExtractEquiKeys(*e.args[0], left_width, lk, rk) &&
           ExtractEquiKeys(*e.args[1], left_width, lk, rk);
  }
  if (e.kind != ExprKind::kBinary || e.op != "=") return false;
  const Expr& a = *e.args[0];
  const Expr& b = *e.args[1];
  if (a.kind != ExprKind::kColumnRef || b.kind != ExprKind::kColumnRef) {
    return false;
  }
  size_t ai = static_cast<size_t>(a.bound_column);
  size_t bi = static_cast<size_t>(b.bound_column);
  if (ai < left_width && bi >= left_width) {
    lk->push_back(static_cast<int>(ai));
    rk->push_back(static_cast<int>(bi - left_width));
    return true;
  }
  if (bi < left_width && ai >= left_width) {
    lk->push_back(static_cast<int>(bi));
    rk->push_back(static_cast<int>(ai - left_width));
    return true;
  }
  return false;
}

/// Human-facing output column name for a select item.
std::string NameOfItem(const sql::SelectItem& item) {
  if (!item.alias.empty()) return item.alias;
  if (item.expr->kind == ExprKind::kColumnRef) return item.expr->column_name;
  if (item.expr->kind == ExprKind::kFunction) return ToLower(item.expr->op);
  return item.expr->ToString();
}

/// Makes a pre-bound column reference (used for star expansion and
/// output-ordering keys).
ExprPtr MakeBoundColumn(std::string name, int index) {
  ExprPtr e = sql::MakeColumnRef("", std::move(name));
  e->bound_column = index;
  return e;
}

/// Plan-time constant folding over every expression the plan evaluates.
/// Runs once, after binding and ORDER BY resolution; both execution modes
/// then see the same folded AST.
void FoldStmtConstants(SelectStmt* stmt) {
  FoldConstants(stmt->where.get());
  for (sql::JoinClause& join : stmt->joins) FoldConstants(join.on.get());
  for (sql::SelectItem& item : stmt->items) {
    if (!item.star) FoldConstants(item.expr.get());
  }
  for (ExprPtr& g : stmt->group_by) FoldConstants(g.get());
  FoldConstants(stmt->having.get());
  for (sql::OrderItem& item : stmt->order_by) FoldConstants(item.expr.get());
}

}  // namespace

Result<PlannedQuery> PlanSelect(SelectStmt* stmt, Catalog& catalog,
                                ExternalResolver* resolver,
                                const ExecOptions& exec) {
  size_t batch_size = EffectiveBatchSize(exec);
  PlannedQuery plan;
  Scope scope;
  OperatorPtr root;

  // Morsel-parallel leaf eligibility (DESIGN.md §6b): a single named table,
  // no joins, batch mode, and a thread count requested. Everything above the
  // scan→filter[→aggregate] leaf (sort, project, distinct, limit, join
  // shapes) stays serial; ineligible shapes fall back to the serial plan
  // unchanged.
  const Table* leaf_table = nullptr;
  size_t leaf_start = 0;
  size_t leaf_count = kScanAll;
  const Expr* leaf_where = nullptr;

  // ---- FROM clause: sources and joins ----
  if (stmt->from.has_value()) {
    DS_ASSIGN_OR_RETURN(BoundSource first,
                        BindTableRef(*stmt->from, catalog, resolver));
    AppendToScope(first, &scope);
    if (exec.num_threads >= 1 && !exec.row_at_a_time && stmt->joins.empty()) {
      leaf_table = first.table;  // null for RANGETABLE sources → serial
    }

    // Interface-aware window pushdown (paper §2.2): push LIMIT/OFFSET into
    // the ordered positional-index scan when nothing else reorders or
    // filters rows.
    bool pushdown = stmt->joins.empty() && stmt->where == nullptr &&
                    stmt->group_by.empty() && stmt->having == nullptr &&
                    stmt->order_by.empty() && !stmt->distinct &&
                    first.table != nullptr &&
                    (stmt->limit.has_value() || stmt->offset.has_value());
    bool consumed_window = false;
    if (pushdown) {
      size_t start = static_cast<size_t>(stmt->offset.value_or(0));
      size_t count = stmt->limit.has_value()
                         ? static_cast<size_t>(*stmt->limit)
                         : kScanAll;
      root = MakeScan(first, start, count, batch_size);
      leaf_start = start;
      leaf_count = count;
      consumed_window = true;
    } else {
      root = MakeScan(first, 0, kScanAll, batch_size);
    }
    if (consumed_window) {
      stmt->limit.reset();
      stmt->offset.reset();
    }

    for (sql::JoinClause& join : stmt->joins) {
      size_t left_width = scope.columns.size();
      DS_ASSIGN_OR_RETURN(BoundSource right,
                          BindTableRef(join.table, catalog, resolver));
      size_t right_width = right.num_columns();
      OperatorPtr right_op = MakeScan(right, 0, kScanAll, batch_size);

      if (join.type == JoinType::kNatural) {
        // Shared visible column names become the hash-join keys; the
        // right-hand copies are hidden from unqualified/star resolution.
        std::vector<int> lk, rk;
        AppendToScope(right, &scope);
        for (size_t r = 0; r < right_width; ++r) {
          const std::string& rname = right.columns[r];
          for (size_t l = 0; l < left_width; ++l) {
            if (scope.columns[l].visible &&
                EqualsIgnoreCase(scope.columns[l].name, rname)) {
              lk.push_back(static_cast<int>(l));
              rk.push_back(static_cast<int>(r));
              scope.columns[left_width + r].visible = false;
              break;
            }
          }
        }
        if (lk.empty()) {
          // No shared attributes: NATURAL JOIN degenerates to a cross join.
          root = std::make_unique<NestedLoopJoinOp>(
              std::move(root), std::move(right_op), nullptr,
              /*left_outer=*/false, right_width);
        } else {
          root = std::make_unique<HashJoinOp>(std::move(root),
                                              std::move(right_op), lk, rk,
                                              /*left_outer=*/false, right_width);
        }
        continue;
      }

      AppendToScope(right, &scope);
      if (join.type == JoinType::kCross) {
        root = std::make_unique<NestedLoopJoinOp>(std::move(root),
                                                  std::move(right_op), nullptr,
                                                  /*left_outer=*/false,
                                                  right_width);
        continue;
      }
      DS_RETURN_IF_ERROR(BindExpr(join.on.get(), scope, resolver,
                                  /*allow_aggregates=*/false));
      bool left_outer = join.type == JoinType::kLeft;
      std::vector<int> lk, rk;
      if (ExtractEquiKeys(*join.on, left_width, &lk, &rk) && !lk.empty()) {
        root = std::make_unique<HashJoinOp>(std::move(root),
                                            std::move(right_op), lk, rk,
                                            left_outer, right_width);
      } else {
        root = std::make_unique<NestedLoopJoinOp>(std::move(root),
                                                  std::move(right_op),
                                                  join.on.get(), left_outer,
                                                  right_width);
      }
    }
  } else {
    // FROM-less SELECT: one empty input row.
    auto one = std::make_shared<std::vector<Row>>();
    one->push_back(Row{});
    root = std::make_unique<RowsScanOp>(std::move(one));
  }

  // ---- WHERE ----
  if (stmt->where != nullptr) {
    DS_RETURN_IF_ERROR(BindExpr(stmt->where.get(), scope, resolver,
                                /*allow_aggregates=*/false));
    if (leaf_table != nullptr) {
      // The predicate rides inside the parallel leaf (each worker filters
      // its own morsels) instead of a FilterOp above the scan.
      leaf_where = stmt->where.get();
    } else {
      root = std::make_unique<FilterOp>(std::move(root), stmt->where.get());
    }
  }

  // ---- Star expansion & output naming ----
  std::vector<const Expr*> output_exprs;
  bool any_aggregate = !stmt->group_by.empty() || stmt->having != nullptr;
  for (sql::SelectItem& item : stmt->items) {
    if (!item.star && sql::ContainsAggregate(*item.expr)) any_aggregate = true;
  }
  for (sql::SelectItem& item : stmt->items) {
    if (item.star) {
      if (any_aggregate) {
        return Status::InvalidArgument(
            "SELECT * cannot be combined with aggregation");
      }
      bool matched = false;
      for (size_t i = 0; i < scope.columns.size(); ++i) {
        const Scope::Column& c = scope.columns[i];
        if (!item.star_qualifier.empty()) {
          if (!EqualsIgnoreCase(c.qualifier, item.star_qualifier)) continue;
        } else if (!c.visible) {
          continue;
        }
        plan.owned_exprs.push_back(MakeBoundColumn(c.name, static_cast<int>(i)));
        output_exprs.push_back(plan.owned_exprs.back().get());
        plan.columns.push_back(c.name);
        matched = true;
      }
      if (!matched) {
        return Status::NotFound("star qualifier '" + item.star_qualifier +
                                "' matches no source");
      }
      continue;
    }
    DS_RETURN_IF_ERROR(BindExpr(item.expr.get(), scope, resolver,
                                /*allow_aggregates=*/true));
    output_exprs.push_back(item.expr.get());
    plan.columns.push_back(NameOfItem(item));
  }

  // ---- Aggregation / projection ----
  if (any_aggregate) {
    for (ExprPtr& g : stmt->group_by) {
      DS_RETURN_IF_ERROR(BindExpr(g.get(), scope, resolver,
                                  /*allow_aggregates=*/false));
    }
    if (stmt->having != nullptr) {
      DS_RETURN_IF_ERROR(BindExpr(stmt->having.get(), scope, resolver,
                                  /*allow_aggregates=*/true));
    }
    std::vector<Expr*> agg_calls;
    for (sql::SelectItem& item : stmt->items) {
      CollectAggregates(item.expr.get(), &agg_calls);
    }
    CollectAggregates(stmt->having.get(), &agg_calls);
    std::vector<const Expr*> group_exprs;
    group_exprs.reserve(stmt->group_by.size());
    for (const ExprPtr& g : stmt->group_by) group_exprs.push_back(g.get());
    if (leaf_table != nullptr) {
      // The whole scan→filter→aggregate leaf goes morsel-parallel; the
      // serial scan built above is discarded.
      root = std::make_unique<ParallelAggregateOp>(
          leaf_table, leaf_start, leaf_count, leaf_where, group_exprs,
          std::move(agg_calls), output_exprs, stmt->having.get(), exec);
    } else {
      root = std::make_unique<HashAggregateOp>(std::move(root), group_exprs,
                                               std::move(agg_calls),
                                               output_exprs,
                                               stmt->having.get());
    }
  } else if (leaf_table != nullptr) {
    // Non-aggregate parallel leaf: materialize the (filtered) window in
    // morsel order. With nothing above that reorders or dedups rows, a
    // LIMIT can stop dispensing once enough prefix rows exist.
    size_t limit_hint = kNoLimitHint;
    if (stmt->order_by.empty() && !stmt->distinct && stmt->limit.has_value() &&
        *stmt->limit >= 0) {
      limit_hint = static_cast<size_t>(*stmt->limit) +
                   static_cast<size_t>(stmt->offset.value_or(0));
    }
    root = std::make_unique<ParallelScanOp>(leaf_table, leaf_start, leaf_count,
                                            leaf_where, exec, limit_hint);
  }

  // ---- ORDER BY ----
  if (!stmt->order_by.empty()) {
    std::vector<SortOp::Key> keys;
    for (sql::OrderItem& item : stmt->order_by) {
      Expr* e = item.expr.get();
      const Expr* key_expr = nullptr;
      // 1. Positional: ORDER BY 2.
      if (e->kind == ExprKind::kLiteral && e->literal.type() == DataType::kInt) {
        int64_t idx = e->literal.int_value();
        if (idx < 1 || static_cast<size_t>(idx) > output_exprs.size()) {
          return Status::InvalidArgument("ORDER BY position " +
                                         std::to_string(idx) + " out of range");
        }
        if (any_aggregate) {
          plan.owned_exprs.push_back(
              MakeBoundColumn(plan.columns[idx - 1], static_cast<int>(idx - 1)));
          key_expr = plan.owned_exprs.back().get();
        } else {
          key_expr = output_exprs[static_cast<size_t>(idx - 1)];
        }
      }
      // 2. Output alias / name.
      if (key_expr == nullptr && e->kind == ExprKind::kColumnRef &&
          e->qualifier.empty()) {
        for (size_t i = 0; i < plan.columns.size(); ++i) {
          if (EqualsIgnoreCase(plan.columns[i], e->column_name)) {
            if (any_aggregate) {
              plan.owned_exprs.push_back(
                  MakeBoundColumn(plan.columns[i], static_cast<int>(i)));
              key_expr = plan.owned_exprs.back().get();
            } else {
              key_expr = output_exprs[i];
            }
            break;
          }
        }
      }
      // 3. Textual match against a select item (e.g. ORDER BY AVG(g)).
      if (key_expr == nullptr && any_aggregate) {
        std::string text = e->ToString();
        for (size_t i = 0; i < stmt->items.size(); ++i) {
          if (!stmt->items[i].star && stmt->items[i].expr->ToString() == text) {
            plan.owned_exprs.push_back(
                MakeBoundColumn(plan.columns[i], static_cast<int>(i)));
            key_expr = plan.owned_exprs.back().get();
            break;
          }
        }
        if (key_expr == nullptr) {
          return Status::InvalidArgument(
              "ORDER BY over aggregation must reference an output column");
        }
      }
      // 4. Arbitrary expression over the input (non-aggregate queries sort
      //    before projection).
      if (key_expr == nullptr) {
        DS_RETURN_IF_ERROR(BindExpr(e, scope, resolver,
                                    /*allow_aggregates=*/false));
        key_expr = e;
      }
      keys.push_back(SortOp::Key{key_expr, item.descending});
    }
    if (any_aggregate) {
      // Sort runs over the aggregate's output rows.
      root = std::make_unique<SortOp>(std::move(root), std::move(keys));
    } else {
      // Sort over input rows, then project.
      root = std::make_unique<SortOp>(std::move(root), std::move(keys));
      root = std::make_unique<ProjectOp>(std::move(root), output_exprs);
    }
  } else if (!any_aggregate) {
    root = std::make_unique<ProjectOp>(std::move(root), output_exprs);
  }

  // ---- DISTINCT / LIMIT ----
  if (stmt->distinct) {
    root = std::make_unique<DistinctOp>(std::move(root));
  }
  if (stmt->limit.has_value() || stmt->offset.has_value()) {
    root = std::make_unique<LimitOp>(std::move(root),
                                     stmt->limit.value_or(-1),
                                     stmt->offset.value_or(0));
  }

  // Constant folding last: ORDER BY's textual matching (case 3 above) must
  // see select items in their original spelling.
  FoldStmtConstants(stmt);

  plan.root = std::move(root);
  return plan;
}

Result<ResultSet> RunSelect(SelectStmt* stmt, Catalog& catalog,
                            ExternalResolver* resolver,
                            const ExecOptions& exec) {
  DS_ASSIGN_OR_RETURN(PlannedQuery plan,
                      PlanSelect(stmt, catalog, resolver, exec));
  std::vector<Row> rows;
  if (exec.row_at_a_time) {
    DS_ASSIGN_OR_RETURN(rows, Materialize(plan.root.get()));
  } else {
    DS_ASSIGN_OR_RETURN(rows, MaterializeBatched(plan.root.get(),
                                                 EffectiveBatchSize(exec)));
  }
  ResultSet rs;
  rs.columns = std::move(plan.columns);
  rs.rows = std::move(rows);
  return rs;
}

std::string ResultSet::ToString(size_t max_rows) const {
  std::string out;
  for (size_t i = 0; i < columns.size(); ++i) {
    if (i > 0) out += "\t";
    out += columns[i];
  }
  if (!columns.empty()) out += "\n";
  size_t shown = 0;
  for (const Row& row : rows) {
    if (shown++ >= max_rows) {
      out += "... (" + std::to_string(rows.size() - max_rows) + " more rows)\n";
      break;
    }
    for (size_t i = 0; i < row.size(); ++i) {
      if (i > 0) out += "\t";
      out += row[i].ToDisplayString();
    }
    out += "\n";
  }
  if (columns.empty() && rows.empty()) {
    out = message.empty() ? std::to_string(affected_rows) + " rows affected"
                          : message;
    out += "\n";
  }
  return out;
}

}  // namespace dataspread
