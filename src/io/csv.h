#ifndef DATASPREAD_IO_CSV_H_
#define DATASPREAD_IO_CSV_H_

#include <string>
#include <string_view>
#include <vector>

#include "common/result.h"
#include "types/value.h"

namespace dataspread {

/// RFC-4180-style CSV codec. The paper's introduction motivates ingesting
/// data that external software "outputs ... into a relational database or a
/// CSV file"; this module is that ingestion path.
///
/// Parsing rules: fields separated by `delimiter`; fields may be quoted with
/// `"` (embedded quotes doubled, newlines allowed inside quotes); both \n and
/// \r\n row terminators; a trailing newline does not produce an empty row.
/// Cells are dynamically typed through Value::FromUserInput.
Result<std::vector<Row>> ParseCsv(std::string_view text, char delimiter = ',');

/// Renders rows as CSV. Fields containing the delimiter, quotes, or newlines
/// are quoted; NULLs render as empty fields.
std::string WriteCsv(const std::vector<Row>& rows, char delimiter = ',');

}  // namespace dataspread

#endif  // DATASPREAD_IO_CSV_H_
