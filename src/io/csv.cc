#include "io/csv.h"

namespace dataspread {

Result<std::vector<Row>> ParseCsv(std::string_view text, char delimiter) {
  std::vector<Row> rows;
  Row current;
  std::string field;
  bool in_quotes = false;
  bool field_was_quoted = false;
  size_t i = 0;
  const size_t n = text.size();

  auto end_field = [&]() {
    // Quoted fields stay text verbatim; unquoted fields are dynamically typed.
    if (field_was_quoted) {
      current.push_back(Value::Text(field));
    } else {
      current.push_back(Value::FromUserInput(field));
    }
    field.clear();
    field_was_quoted = false;
  };
  auto end_row = [&]() {
    end_field();
    rows.push_back(std::move(current));
    current = Row{};
  };

  while (i < n) {
    char c = text[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < n && text[i + 1] == '"') {
          field += '"';
          i += 2;
          continue;
        }
        in_quotes = false;
        ++i;
        continue;
      }
      field += c;
      ++i;
      continue;
    }
    if (c == '"' && field.empty() && !field_was_quoted) {
      in_quotes = true;
      field_was_quoted = true;
      ++i;
      continue;
    }
    if (c == delimiter) {
      end_field();
      ++i;
      continue;
    }
    if (c == '\r') {
      if (i + 1 < n && text[i + 1] == '\n') ++i;
      end_row();
      ++i;
      continue;
    }
    if (c == '\n') {
      end_row();
      ++i;
      continue;
    }
    field += c;
    ++i;
  }
  if (in_quotes) {
    return Status::ParseError("unterminated quoted CSV field");
  }
  // Final row without a trailing newline.
  if (!field.empty() || field_was_quoted || !current.empty()) {
    end_row();
  }
  return rows;
}

namespace {

bool NeedsQuoting(const std::string& s, char delimiter) {
  for (char c : s) {
    if (c == delimiter || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

}  // namespace

std::string WriteCsv(const std::vector<Row>& rows, char delimiter) {
  std::string out;
  for (const Row& row : rows) {
    for (size_t c = 0; c < row.size(); ++c) {
      if (c > 0) out += delimiter;
      std::string text = row[c].ToDisplayString();
      // Text that would re-parse as a number/bool/empty is quoted so the
      // dynamic typing of a round trip is faithful.
      bool ambiguous_text =
          row[c].type() == DataType::kText &&
          Value::FromUserInput(text).type() != DataType::kText;
      if (NeedsQuoting(text, delimiter) || ambiguous_text) {
        out += '"';
        for (char ch : text) {
          if (ch == '"') out += "\"\"";
          else out += ch;
        }
        out += '"';
      } else {
        out += text;
      }
    }
    out += '\n';
  }
  return out;
}

}  // namespace dataspread
