#include "types/value.h"

#include <cmath>
#include <functional>
#include <ostream>

#include "common/str_util.h"

namespace dataspread {

Value Value::FromUserInput(std::string_view text) {
  std::string_view trimmed = TrimView(text);
  if (trimmed.empty()) return Value::Null();
  if (EqualsIgnoreCase(trimmed, "true")) return Value::Bool(true);
  if (EqualsIgnoreCase(trimmed, "false")) return Value::Bool(false);
  if (auto i = ParseInt64(trimmed)) return Value::Int(*i);
  if (auto d = ParseDouble(trimmed)) return Value::Real(*d);
  return Value::Text(std::string(text));
}

DataType Value::type() const {
  switch (data_.index()) {
    case 0:
      return DataType::kNull;
    case 1:
      return DataType::kBool;
    case 2:
      return DataType::kInt;
    case 3:
      return DataType::kReal;
    case 4:
      return DataType::kText;
    case 5:
      return DataType::kError;
  }
  return DataType::kNull;
}

Result<double> Value::AsReal() const {
  switch (type()) {
    case DataType::kInt:
      return static_cast<double>(int_value());
    case DataType::kReal:
      return real_value();
    case DataType::kBool:
      return bool_value() ? 1.0 : 0.0;
    default:
      return Status::TypeError("cannot interpret " + ToDisplayString() +
                               " (" + DataTypeName(type()) + ") as a number");
  }
}

Result<int64_t> Value::AsInt() const {
  switch (type()) {
    case DataType::kInt:
      return int_value();
    case DataType::kBool:
      return static_cast<int64_t>(bool_value() ? 1 : 0);
    case DataType::kReal: {
      double d = real_value();
      if (d == std::floor(d) && std::fabs(d) < 9.2e18) {
        return static_cast<int64_t>(d);
      }
      return Status::TypeError("REAL value " + FormatDouble(d) +
                               " is not an integer");
    }
    default:
      return Status::TypeError("cannot interpret " + ToDisplayString() +
                               " (" + DataTypeName(type()) + ") as an integer");
  }
}

Result<bool> Value::AsBool() const {
  switch (type()) {
    case DataType::kBool:
      return bool_value();
    case DataType::kInt:
      return int_value() != 0;
    case DataType::kReal:
      return real_value() != 0.0;
    default:
      return Status::TypeError("cannot interpret " + ToDisplayString() +
                               " (" + DataTypeName(type()) + ") as a boolean");
  }
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case DataType::kNull:
      return "";
    case DataType::kBool:
      return bool_value() ? "TRUE" : "FALSE";
    case DataType::kInt:
      return std::to_string(int_value());
    case DataType::kReal:
      return FormatDouble(real_value());
    case DataType::kText:
      return text_value();
    case DataType::kError:
      return error_code();
  }
  return "";
}

std::string Value::ToSqlLiteral() const {
  switch (type()) {
    case DataType::kNull:
      return "NULL";
    case DataType::kText: {
      std::string out = "'";
      for (char c : text_value()) {
        if (c == '\'') out += "''";
        else out += c;
      }
      out += "'";
      return out;
    }
    case DataType::kError:
      return "ERROR(" + error_code() + ")";
    default:
      return ToDisplayString();
  }
}

namespace {

// Rank in the cross-type total order. INT and REAL share a rank so they
// compare numerically against each other.
int TypeRank(DataType t) {
  switch (t) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return 1;
    case DataType::kInt:
    case DataType::kReal:
      return 2;
    case DataType::kText:
      return 3;
    case DataType::kError:
      return 4;
  }
  return 5;
}

template <typename T>
int Cmp(const T& a, const T& b) {
  if (a < b) return -1;
  if (b < a) return 1;
  return 0;
}

}  // namespace

int Value::Compare(const Value& a, const Value& b) {
  int ra = TypeRank(a.type());
  int rb = TypeRank(b.type());
  if (ra != rb) return ra < rb ? -1 : 1;
  switch (a.type()) {
    case DataType::kNull:
      return 0;
    case DataType::kBool:
      return Cmp(a.bool_value(), b.bool_value());
    case DataType::kInt:
      if (b.type() == DataType::kInt) return Cmp(a.int_value(), b.int_value());
      return Cmp(static_cast<double>(a.int_value()), b.real_value());
    case DataType::kReal:
      if (b.type() == DataType::kReal) return Cmp(a.real_value(), b.real_value());
      return Cmp(a.real_value(), static_cast<double>(b.int_value()));
    case DataType::kText:
      return Cmp(a.text_value(), b.text_value());
    case DataType::kError:
      return Cmp(a.error_code(), b.error_code());
  }
  return 0;
}

size_t Value::Hash() const {
  switch (type()) {
    case DataType::kNull:
      return 0x9e3779b97f4a7c15ULL;
    case DataType::kBool:
      return bool_value() ? 0x517cc1b727220a95ULL : 0x2545f4914f6cdd1dULL;
    case DataType::kInt: {
      // Hash INT through double when representable so that 1 and 1.0 agree.
      double d = static_cast<double>(int_value());
      if (static_cast<int64_t>(d) == int_value()) {
        return std::hash<double>{}(d);
      }
      return std::hash<int64_t>{}(int_value());
    }
    case DataType::kReal:
      return std::hash<double>{}(real_value());
    case DataType::kText:
      return std::hash<std::string>{}(text_value());
    case DataType::kError:
      return std::hash<std::string>{}(error_code()) ^ 0xe7037ed1a0b428dbULL;
  }
  return 0;
}

Result<Value> Value::CastTo(DataType target) const {
  if (is_null()) return Value::Null();
  if (is_error()) {
    return Status::TypeError("error value " + error_code() + " cannot be cast");
  }
  if (type() == target) return *this;
  switch (target) {
    case DataType::kInt: {
      if (type() == DataType::kText) {
        if (auto i = ParseInt64(text_value())) return Value::Int(*i);
        return Status::TypeError("cannot cast '" + text_value() + "' to INTEGER");
      }
      DS_ASSIGN_OR_RETURN(int64_t i, AsInt());
      return Value::Int(i);
    }
    case DataType::kReal: {
      if (type() == DataType::kText) {
        if (auto d = ParseDouble(text_value())) return Value::Real(*d);
        return Status::TypeError("cannot cast '" + text_value() + "' to REAL");
      }
      DS_ASSIGN_OR_RETURN(double d, AsReal());
      return Value::Real(d);
    }
    case DataType::kBool: {
      if (type() == DataType::kText) {
        if (EqualsIgnoreCase(text_value(), "true")) return Value::Bool(true);
        if (EqualsIgnoreCase(text_value(), "false")) return Value::Bool(false);
        return Status::TypeError("cannot cast '" + text_value() + "' to BOOLEAN");
      }
      DS_ASSIGN_OR_RETURN(bool b, AsBool());
      return Value::Bool(b);
    }
    case DataType::kText:
      return Value::Text(ToDisplayString());
    case DataType::kNull:
    case DataType::kError:
      return Status::TypeError(std::string("cannot cast to ") +
                               DataTypeName(target));
  }
  return Status::Internal("unreachable cast target");
}

void PrintTo(const Value& v, std::ostream* os) {
  if (v.is_null()) {
    *os << "NULL";
    return;
  }
  *os << DataTypeName(v.type()) << "(" << v.ToSqlLiteral() << ")";
}

size_t RowHash::operator()(const Row& row) const {
  size_t h = 0x811c9dc5;
  for (const Value& v : row) {
    h ^= v.Hash() + 0x9e3779b9 + (h << 6) + (h >> 2);
  }
  return h;
}

bool RowEq::operator()(const Row& a, const Row& b) const {
  if (a.size() != b.size()) return false;
  for (size_t i = 0; i < a.size(); ++i) {
    if (a[i] != b[i]) return false;
  }
  return true;
}

}  // namespace dataspread
