#include "types/data_type.h"

#include "common/str_util.h"

namespace dataspread {

const char* DataTypeName(DataType type) {
  switch (type) {
    case DataType::kNull:
      return "NULL";
    case DataType::kBool:
      return "BOOLEAN";
    case DataType::kInt:
      return "INTEGER";
    case DataType::kReal:
      return "REAL";
    case DataType::kText:
      return "TEXT";
    case DataType::kError:
      return "ERROR";
  }
  return "UNKNOWN";
}

std::optional<DataType> DataTypeFromName(std::string_view name) {
  std::string up = ToUpper(name);
  if (up == "INT" || up == "INTEGER" || up == "BIGINT" || up == "SMALLINT") {
    return DataType::kInt;
  }
  if (up == "REAL" || up == "DOUBLE" || up == "FLOAT" || up == "NUMERIC" ||
      up == "DECIMAL") {
    return DataType::kReal;
  }
  if (up == "TEXT" || up == "VARCHAR" || up == "CHAR" || up == "STRING") {
    return DataType::kText;
  }
  if (up == "BOOL" || up == "BOOLEAN") {
    return DataType::kBool;
  }
  return std::nullopt;
}

bool IsNumeric(DataType type) {
  return type == DataType::kInt || type == DataType::kReal;
}

DataType UnifyForInference(DataType a, DataType b) {
  if (a == DataType::kNull) return b;
  if (b == DataType::kNull) return a;
  if (a == b) return a;
  if (IsNumeric(a) && IsNumeric(b)) return DataType::kReal;
  return DataType::kText;
}

}  // namespace dataspread
