#ifndef DATASPREAD_TYPES_VALUE_H_
#define DATASPREAD_TYPES_VALUE_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/result.h"
#include "types/data_type.h"

namespace dataspread {

/// A dynamically typed scalar shared by the spreadsheet and the database.
///
/// The value space is NULL ∪ BOOL ∪ INT64 ∪ REAL ∪ TEXT ∪ ERROR. Error values
/// (e.g. `#DIV/0!`) exist only on the interface side; relational operations
/// treat them as type errors.
class Value {
 public:
  /// NULL value.
  Value() : data_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Bool(bool v) { return Value(Payload(v)); }
  static Value Int(int64_t v) { return Value(Payload(v)); }
  static Value Real(double v) { return Value(Payload(v)); }
  static Value Text(std::string v) { return Value(Payload(std::move(v))); }
  /// Spreadsheet error value; `code` like "#DIV/0!", "#REF!", "#CYCLE!".
  static Value Error(std::string code) {
    Value v;
    v.data_ = ErrorPayload{std::move(code)};
    return v;
  }

  /// Spreadsheet-style dynamic typing of raw user input (§2.2 "Data typing"):
  /// "" → NULL, integer literal → INT, numeric literal → REAL,
  /// TRUE/FALSE (case-insensitive) → BOOL, anything else → TEXT.
  static Value FromUserInput(std::string_view text);

  DataType type() const;
  bool is_null() const { return std::holds_alternative<std::monostate>(data_); }
  bool is_error() const { return std::holds_alternative<ErrorPayload>(data_); }
  bool is_numeric() const { return IsNumeric(type()); }

  /// Typed accessors; only valid when type() matches.
  bool bool_value() const { return std::get<bool>(data_); }
  int64_t int_value() const { return std::get<int64_t>(data_); }
  double real_value() const { return std::get<double>(data_); }
  const std::string& text_value() const { return std::get<std::string>(data_); }
  const std::string& error_code() const {
    return std::get<ErrorPayload>(data_).code;
  }

  /// Numeric view: INT and REAL convert; BOOL counts 0/1 (spreadsheet rule).
  /// Fails with TypeError for TEXT/NULL/ERROR.
  Result<double> AsReal() const;
  /// Integer view: INT passes through; REAL must be integral.
  Result<int64_t> AsInt() const;
  /// Truthiness: BOOL passes through; numerics are non-zero. Fails otherwise.
  Result<bool> AsBool() const;

  /// Display text (what a cell shows): NULL → "", 3.0 → "3", TRUE/FALSE,
  /// errors show their code.
  std::string ToDisplayString() const;
  /// Debug/SQL-literal rendering: NULL, 'quoted text', TRUE, 1.5.
  std::string ToSqlLiteral() const;

  /// Total order used by ORDER BY and comparisons across numeric types:
  /// NULL < BOOL < numeric (INT and REAL compare by magnitude) < TEXT < ERROR.
  /// Returns <0, 0, >0.
  static int Compare(const Value& a, const Value& b);

  /// SQL equality semantics for grouping/joins: INT 1 equals REAL 1.0.
  bool operator==(const Value& other) const {
    return Compare(*this, other) == 0;
  }
  bool operator!=(const Value& other) const { return !(*this == other); }
  bool operator<(const Value& other) const { return Compare(*this, other) < 0; }

  /// Hash consistent with operator== (numeric 1 and 1.0 hash equally).
  size_t Hash() const;

  /// Best-effort cast used when storing into a typed column; NULL passes
  /// through any type.
  Result<Value> CastTo(DataType target) const;

 private:
  struct ErrorPayload {
    std::string code;
    bool operator==(const ErrorPayload& o) const { return code == o.code; }
  };
  using Payload =
      std::variant<std::monostate, bool, int64_t, double, std::string>;
  using Storage = std::variant<std::monostate, bool, int64_t, double,
                               std::string, ErrorPayload>;

  explicit Value(Payload p) {
    std::visit([this](auto&& v) { data_ = std::move(v); }, std::move(p));
  }

  Storage data_;
};

/// GoogleTest/debug printing: "INTEGER(42)", "TEXT('x')", "NULL".
void PrintTo(const Value& v, std::ostream* os);

/// One relational tuple / one sheet row slice.
using Row = std::vector<Value>;

/// Hash functor for Value keys in unordered containers.
struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

/// Hash functor for composite keys (group-by, hash join).
struct RowHash {
  size_t operator()(const Row& row) const;
};

/// Element-wise equality consistent with RowHash.
struct RowEq {
  bool operator()(const Row& a, const Row& b) const;
};

}  // namespace dataspread

#endif  // DATASPREAD_TYPES_VALUE_H_
