#ifndef DATASPREAD_TYPES_DATA_TYPE_H_
#define DATASPREAD_TYPES_DATA_TYPE_H_

#include <optional>
#include <string>
#include <string_view>

namespace dataspread {

/// Dynamic type of a cell / attribute value.
///
/// The paper (§2.2 "Data typing") requires spreadsheet-style dynamic typing on
/// the interface with automatic type assignment inside the database; this enum
/// is shared by both sides. `kError` models spreadsheet error values such as
/// `#DIV/0!`; error values never enter relational storage.
enum class DataType {
  kNull = 0,
  kBool,
  kInt,
  kReal,
  kText,
  kError,
};

/// SQL-facing name: "NULL", "BOOLEAN", "INTEGER", "REAL", "TEXT", "ERROR".
const char* DataTypeName(DataType type);

/// Parses a SQL type name (INT/INTEGER/BIGINT, REAL/DOUBLE/FLOAT, TEXT/
/// VARCHAR/STRING, BOOL/BOOLEAN). Case-insensitive. Returns nullopt for
/// unknown names.
std::optional<DataType> DataTypeFromName(std::string_view name);

/// True for kInt and kReal.
bool IsNumeric(DataType type);

/// Least-general type able to hold values of both inputs. Used by schema
/// inference when a column mixes types observed across rows:
///   Null is the identity; Int ∪ Real = Real; Bool ∪ Bool = Bool;
///   any other mixture widens to Text.
DataType UnifyForInference(DataType a, DataType b);

}  // namespace dataspread

#endif  // DATASPREAD_TYPES_DATA_TYPE_H_
