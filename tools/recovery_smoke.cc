// Crash-recovery smoke harness (driven by ci/check.sh).
//
//   recovery_smoke run <dir> [max_slots]
//     Opens a durable pager (WAL + persistent spill under <dir>, 64-frame
//     pool) and appends a deterministic stream of values. Every kSyncEvery
//     slots it fsyncs the WAL and prints "synced <n>" — the durability
//     horizon the parent records before SIGKILLing the process mid-stream.
//     Every kCheckpointEvery slots it takes a real fuzzy checkpoint, so the
//     kill also lands between/inside checkpoints over time.
//
//   recovery_smoke recover <dir> <min_slots>
//     Reopens the same pair, timing recovery, then diffs the recovered
//     contents against the deterministic generator: every slot below the
//     recovered size must match, and the size must be at least <min_slots>
//     (the last horizon the parent saw acknowledged). Prints one metrics
//     line for the CI gate:
//       recovered slots=<n> records=<n> wal_bytes=<n> ms=<t>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "storage/pager.h"

namespace {

using dataspread::Value;
using dataspread::storage::FileId;
using dataspread::storage::Pager;
using dataspread::storage::PagerConfig;

constexpr uint64_t kSyncEvery = 2048;
constexpr uint64_t kCheckpointEvery = 40960;

PagerConfig SmokeConfig(const std::string& dir) {
  PagerConfig config;
  config.max_resident_pages = 64;
  config.spill_path = dir + "/smoke.spill";
  config.wal_path = dir + "/smoke.wal";
  config.durable_spill = true;
  return config;
}

/// The deterministic stream: recovery can validate any prefix length.
Value ExpectedValue(uint64_t slot) {
  if (slot % 4 == 0) return Value::Text("t" + std::to_string(slot * 31));
  return Value::Int(static_cast<int64_t>(slot) * 7 - 3);
}

int Run(const std::string& dir, uint64_t max_slots) {
  Pager pager(SmokeConfig(dir));
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < max_slots; ++s) {
    pager.Write(f, s, ExpectedValue(s));
    if ((s + 1) % kSyncEvery == 0) {
      pager.SyncWal();
      std::printf("synced %llu\n", static_cast<unsigned long long>(s + 1));
      std::fflush(stdout);
    }
    if ((s + 1) % kCheckpointEvery == 0) (void)pager.FlushAll();
  }
  return 0;
}

int Recover(const std::string& dir, uint64_t min_slots) {
  auto t0 = std::chrono::steady_clock::now();
  Pager pager(SmokeConfig(dir));
  auto t1 = std::chrono::steady_clock::now();
  double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  if (!pager.HasFile(1)) {
    std::fprintf(stderr, "recovery_smoke: file 1 missing after recovery\n");
    return 1;
  }
  uint64_t size = pager.FileSize(1);
  if (size < min_slots) {
    std::fprintf(stderr,
                 "recovery_smoke: recovered %llu slots < %llu acknowledged "
                 "before the kill — durability hole\n",
                 static_cast<unsigned long long>(size),
                 static_cast<unsigned long long>(min_slots));
    return 1;
  }
  for (uint64_t s = 0; s < size; ++s) {
    if (!(pager.Read(1, s) == ExpectedValue(s))) {
      std::fprintf(stderr, "recovery_smoke: slot %llu diverges\n",
                   static_cast<unsigned long long>(s));
      return 1;
    }
  }
  std::printf("recovered slots=%llu records=%llu wal_bytes=%llu ms=%.2f\n",
              static_cast<unsigned long long>(size),
              static_cast<unsigned long long>(pager.recovery_records()),
              static_cast<unsigned long long>(pager.recovery_bytes()), ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "run") == 0) {
    uint64_t max_slots = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                  : 400ull * 1000 * 1000;
    return Run(argv[2], max_slots);
  }
  if (argc >= 4 && std::strcmp(argv[1], "recover") == 0) {
    return Recover(argv[2], std::strtoull(argv[3], nullptr, 10));
  }
  std::fprintf(stderr,
               "usage: recovery_smoke run <dir> [max_slots]\n"
               "       recovery_smoke recover <dir> <min_slots>\n");
  return 2;
}
