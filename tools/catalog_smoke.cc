// Catalog-recovery smoke harness (driven by ci/check.sh).
//
//   catalog_smoke run <base> [max_rows]
//     Database::Open(<base>) — a durable database with four tables, one per
//     storage model — then appends a deterministic row stream to every
//     table. Every kSyncEvery rows it fsyncs the WAL and prints
//     "synced <n>"; every kDdlEvery rows it runs a DDL statement (ALTER
//     TABLE ADD COLUMN with a default) against all four tables and prints
//     "ddl <k>" — DDL records are self-syncing commit points. The parent
//     records both horizons, then SIGKILLs the process mid-stream.
//
//   catalog_smoke recover <base> <min_rows> <min_ddl>
//     Database::Open(<base>) again, timing the open (page redo + catalog
//     rebuild + table rebinding). Verifies with *no application-side
//     schema knowledge beyond the generator*: all four tables exist, each
//     carries at least <min_ddl> recovered extra columns and <min_rows>
//     rows, and every cell — defaults of rows predating each DDL included —
//     matches the deterministic generator. Prints one metrics line:
//       recovered tables=4 rows=<n> ddl=<k> records=<n> ms=<t>
//
//   catalog_smoke txn-run <base>
//     Streams BEGIN..COMMIT / ROLLBACK transactions of kTxnBatch INSERTs
//     each (every third rolled back and re-issued by the next transaction)
//     with sync_on_commit, printing "committed <n>" after every durable
//     COMMIT, until the parent SIGKILLs it — often mid-transaction or
//     mid-rollback.
//
//   catalog_smoke txn-recover <base> <min_rows>
//     Reopens and verifies exactly a committed-transaction prefix: at least
//     <min_rows> rows (every acknowledged COMMIT), a whole number of
//     transactions (no partially applied open batch), every cell matching
//     the generator (no trace of any rolled-back batch). Prints:
//       txn recovered rows=<n> records=<n> ms=<t>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "db/database.h"

namespace {

using dataspread::ColumnDef;
using dataspread::Database;
using dataspread::DataType;
using dataspread::Row;
using dataspread::Schema;
using dataspread::StorageModel;
using dataspread::StorageModelName;
using dataspread::Table;
using dataspread::Value;

constexpr uint64_t kSyncEvery = 512;
constexpr uint64_t kDdlEvery = 4096;
constexpr StorageModel kModels[] = {StorageModel::kRow, StorageModel::kColumn,
                                    StorageModel::kRcv,
                                    StorageModel::kHybrid};
constexpr size_t kBaseCols = 3;

std::string TableName(StorageModel model) {
  return std::string("t_") + StorageModelName(model);
}

/// Base-column values of row `r` — recovery can validate any prefix.
Value BaseValue(uint64_t r, size_t col) {
  switch (col) {
    case 0:
      return Value::Int(static_cast<int64_t>(r));
    case 1:
      return (r % 11 == 0) ? Value::Null()
                           : Value::Text("n" + std::to_string(r % 97));
    default:
      return Value::Real(static_cast<double>(r) * 0.5);
  }
}

/// Extra column k: rows predating its DDL hold the default, later rows an
/// explicit generated value.
Value ExtraDefault(uint64_t k) {
  return Value::Int(-static_cast<int64_t>(k) - 1);
}
Value ExtraValue(uint64_t r, uint64_t k) {
  return Value::Int(static_cast<int64_t>(r * 31 + k));
}
uint64_t ExtraAddedAtRow(uint64_t k) { return (k + 1) * kDdlEvery; }

int Run(const std::string& base, uint64_t max_rows) {
  // Auto-checkpoint keeps the log (and replay work) bounded and makes the
  // kill land inside checkpoint-truncated epochs over time — so the smoke
  // also proves the catalog blob embedded in every snapshot.
  dataspread::DatabaseOptions options;
  options.pager.wal_auto_checkpoint_bytes = 32ull << 20;
  auto db = Database::Open(base, options);
  std::vector<Table*> tables;
  for (StorageModel model : kModels) {
    Schema schema({ColumnDef{"id", DataType::kInt, false},
                   ColumnDef{"label", DataType::kText, false},
                   ColumnDef{"score", DataType::kReal, false}});
    auto t = db->catalog().CreateTable(TableName(model), schema, model);
    if (!t.ok()) {
      std::fprintf(stderr, "catalog_smoke: create failed: %s\n",
                   t.status().message().c_str());
      return 1;
    }
    tables.push_back(t.value());
  }
  uint64_t ddl_count = 0;
  for (uint64_t r = 0; r < max_rows; ++r) {
    for (Table* t : tables) {
      Row row;
      for (size_t c = 0; c < kBaseCols; ++c) row.push_back(BaseValue(r, c));
      for (uint64_t k = 0; k < ddl_count; ++k) {
        row.push_back(ExtraValue(r, k));
      }
      if (!t->AppendRow(std::move(row)).ok()) {
        std::fprintf(stderr, "catalog_smoke: append failed at row %llu\n",
                     static_cast<unsigned long long>(r));
        return 1;
      }
    }
    if ((r + 1) % kSyncEvery == 0) {
      db->pager().SyncWal();
      std::printf("synced %llu\n", static_cast<unsigned long long>(r + 1));
      std::fflush(stdout);
    }
    if ((r + 1) % kDdlEvery == 0) {
      std::string col = "extra" + std::to_string(ddl_count);
      for (Table* t : tables) {
        if (!t->AddColumn(ColumnDef{col, DataType::kInt, false},
                          ExtraDefault(ddl_count))
                 .ok()) {
          std::fprintf(stderr, "catalog_smoke: DDL failed\n");
          return 1;
        }
      }
      ddl_count += 1;
      std::printf("ddl %llu\n", static_cast<unsigned long long>(ddl_count));
      std::fflush(stdout);
    }
  }
  return 0;
}

int Recover(const std::string& base, uint64_t min_rows, uint64_t min_ddl) {
  auto t0 = std::chrono::steady_clock::now();
  auto db = Database::Open(base);
  auto t1 = std::chrono::steady_clock::now();
  double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  uint64_t rows = 0, ddl = 0;
  for (StorageModel model : kModels) {
    auto table_or = db->catalog().GetTable(TableName(model));
    if (!table_or.ok()) {
      std::fprintf(stderr, "catalog_smoke: table %s missing after reopen\n",
                   TableName(model).c_str());
      return 1;
    }
    Table* t = table_or.value();
    size_t cols = t->schema().num_columns();
    if (cols < kBaseCols || cols - kBaseCols < min_ddl) {
      std::fprintf(stderr,
                   "catalog_smoke: %s recovered %zu extra columns < %llu "
                   "acknowledged DDLs — schema durability hole\n",
                   t->name().c_str(), cols - kBaseCols,
                   static_cast<unsigned long long>(min_ddl));
      return 1;
    }
    uint64_t extras = cols - kBaseCols;
    uint64_t n = t->num_rows();
    if (n < min_rows) {
      std::fprintf(stderr,
                   "catalog_smoke: %s recovered %llu rows < %llu "
                   "acknowledged — durability hole\n",
                   t->name().c_str(), static_cast<unsigned long long>(n),
                   static_cast<unsigned long long>(min_rows));
      return 1;
    }
    // Schema sanity: extra columns recovered by name and type.
    for (uint64_t k = 0; k < extras; ++k) {
      const ColumnDef& col = t->schema().column(kBaseCols + k);
      if (col.name != "extra" + std::to_string(k) ||
          col.type != DataType::kInt) {
        std::fprintf(stderr, "catalog_smoke: %s column %llu diverges\n",
                     t->name().c_str(), static_cast<unsigned long long>(k));
        return 1;
      }
    }
    for (uint64_t r = 0; r < n; ++r) {
      auto row_or = t->GetRowAt(r);
      if (!row_or.ok() || row_or.value().size() != kBaseCols + extras) {
        std::fprintf(stderr, "catalog_smoke: %s row %llu unreadable\n",
                     t->name().c_str(), static_cast<unsigned long long>(r));
        return 1;
      }
      const Row& row = row_or.value();
      for (size_t c = 0; c < kBaseCols; ++c) {
        if (!(row[c] == BaseValue(r, c))) {
          std::fprintf(stderr, "catalog_smoke: %s cell (%llu, %zu) diverges\n",
                       t->name().c_str(), static_cast<unsigned long long>(r),
                       c);
          return 1;
        }
      }
      for (uint64_t k = 0; k < extras; ++k) {
        Value want = r < ExtraAddedAtRow(k) ? ExtraDefault(k)
                                            : ExtraValue(r, k);
        if (!(row[kBaseCols + k] == want)) {
          std::fprintf(stderr,
                       "catalog_smoke: %s extra column %llu diverges at row "
                       "%llu\n",
                       t->name().c_str(), static_cast<unsigned long long>(k),
                       static_cast<unsigned long long>(r));
          return 1;
        }
      }
    }
    rows = n;
    ddl = extras;
  }
  std::printf("recovered tables=4 rows=%llu ddl=%llu records=%llu ms=%.2f\n",
              static_cast<unsigned long long>(rows),
              static_cast<unsigned long long>(ddl),
              static_cast<unsigned long long>(db->pager().recovery_records()),
              ms);
  return 0;
}

constexpr uint64_t kTxnBatch = 64;

int TxnRun(const std::string& base) {
  dataspread::DatabaseOptions options;
  options.sync_on_commit = true;
  options.pager.wal_auto_checkpoint_bytes = 32ull << 20;
  auto db = Database::Open(base, options);
  if (!db->Execute("CREATE TABLE txn_t (id INT, v INT)").ok()) {
    std::fprintf(stderr, "catalog_smoke: create failed\n");
    return 1;
  }
  uint64_t committed = 0;
  for (uint64_t txn = 0;; ++txn) {
    // Every third transaction is rolled back; the next one re-inserts the
    // same batch, so the committed state is always a prefix 0..n-1.
    bool doomed = txn % 3 == 2;
    if (!db->Execute("BEGIN").ok()) return 1;
    for (uint64_t i = 0; i < kTxnBatch; ++i) {
      uint64_t id = committed + i;
      if (!db->Execute("INSERT INTO txn_t VALUES (" + std::to_string(id) +
                       ", " + std::to_string(2 * id + 1) + ")")
               .ok()) {
        std::fprintf(stderr, "catalog_smoke: insert failed\n");
        return 1;
      }
    }
    if (!db->Execute(doomed ? "ROLLBACK" : "COMMIT").ok()) {
      std::fprintf(stderr, "catalog_smoke: %s failed\n",
                   doomed ? "ROLLBACK" : "COMMIT");
      return 1;
    }
    if (!doomed) {
      committed += kTxnBatch;
      std::printf("committed %llu\n",
                  static_cast<unsigned long long>(committed));
      std::fflush(stdout);
    }
  }
}

int TxnRecover(const std::string& base, uint64_t min_rows) {
  auto t0 = std::chrono::steady_clock::now();
  auto db = Database::Open(base);
  auto t1 = std::chrono::steady_clock::now();
  double ms = std::chrono::duration<double, std::milli>(t1 - t0).count();

  auto table_or = db->catalog().GetTable("txn_t");
  if (!table_or.ok()) {
    std::fprintf(stderr, "catalog_smoke: txn_t missing after reopen\n");
    return 1;
  }
  Table* t = table_or.value();
  uint64_t n = t->num_rows();
  if (n < min_rows) {
    std::fprintf(stderr,
                 "catalog_smoke: recovered %llu rows < %llu acknowledged "
                 "commits — durability hole\n",
                 static_cast<unsigned long long>(n),
                 static_cast<unsigned long long>(min_rows));
    return 1;
  }
  if (n % kTxnBatch != 0) {
    std::fprintf(stderr,
                 "catalog_smoke: recovered %llu rows, not a whole number of "
                 "transactions — a partial batch survived the kill\n",
                 static_cast<unsigned long long>(n));
    return 1;
  }
  for (uint64_t r = 0; r < n; ++r) {
    auto row_or = t->GetRowAt(r);
    if (!row_or.ok() || row_or.value().size() != 2 ||
        !(row_or.value()[0] == Value::Int(static_cast<int64_t>(r))) ||
        !(row_or.value()[1] ==
          Value::Int(static_cast<int64_t>(2 * r + 1)))) {
      std::fprintf(stderr,
                   "catalog_smoke: row %llu diverges — a rolled-back or "
                   "open batch leaked into the committed prefix\n",
                   static_cast<unsigned long long>(r));
      return 1;
    }
  }
  std::printf("txn recovered rows=%llu records=%llu ms=%.2f\n",
              static_cast<unsigned long long>(n),
              static_cast<unsigned long long>(db->pager().recovery_records()),
              ms);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc >= 3 && std::strcmp(argv[1], "run") == 0) {
    uint64_t max_rows = argc > 3 ? std::strtoull(argv[3], nullptr, 10)
                                 : 100ull * 1000 * 1000;
    return Run(argv[2], max_rows);
  }
  if (argc >= 5 && std::strcmp(argv[1], "recover") == 0) {
    return Recover(argv[2], std::strtoull(argv[3], nullptr, 10),
                   std::strtoull(argv[4], nullptr, 10));
  }
  if (argc >= 3 && std::strcmp(argv[1], "txn-run") == 0) {
    return TxnRun(argv[2]);
  }
  if (argc >= 4 && std::strcmp(argv[1], "txn-recover") == 0) {
    return TxnRecover(argv[2], std::strtoull(argv[3], nullptr, 10));
  }
  std::fprintf(stderr,
               "usage: catalog_smoke run <base> [max_rows]\n"
               "       catalog_smoke recover <base> <min_rows> <min_ddl>\n"
               "       catalog_smoke txn-run <base>\n"
               "       catalog_smoke txn-recover <base> <min_rows>\n");
  return 2;
}
