// Gradebook: the motivating scenario from the paper's introduction (§1).
//
// "a spreadsheet containing course assignment scores and eventual grades
//  for students ... and demographic information ... in another sheet."
// The three operations the paper calls "very cumbersome" in plain
// spreadsheets are each one DBSQL formula here:
//   1. select students with > 90 points in at least one assignment,
//   2. average grade by demographic group (a join of the two sheets),
//   3. live analysis over a continuously growing course-log table.
#include <cstdio>

#include "core/dataspread.h"

using dataspread::DataSpread;
using dataspread::Sheet;

int main() {
  DataSpread ds;
  Sheet* scores = ds.AddSheet("Scores").ValueOrDie();
  Sheet* demo = ds.AddSheet("Demo").ValueOrDie();
  (void)scores;
  (void)demo;

  // ---- Scores sheet (header + 8 students) ----
  const char* header[] = {"student", "hw1", "hw2", "final", "grade"};
  for (int c = 0; c < 5; ++c) {
    (void)ds.SetCellAt(scores, 0, c, header[c]);
  }
  struct Student {
    const char* name;
    int hw1, hw2, final_score;
    double grade;
    const char* program;
  } students[] = {
      {"ann", 95, 80, 88, 3.9, "undergrad"}, {"bob", 60, 92, 71, 3.1, "MS"},
      {"cat", 91, 85, 94, 3.7, "undergrad"}, {"dan", 70, 75, 62, 2.9, "PhD"},
      {"eva", 88, 99, 91, 4.0, "MS"},        {"fred", 54, 61, 70, 2.5, "PhD"},
      {"gil", 92, 77, 85, 3.6, "undergrad"}, {"hana", 81, 93, 79, 3.4, "MS"},
  };
  int r = 1;
  for (const Student& s : students) {
    (void)ds.SetCellAt(scores, r, 0, s.name);
    (void)ds.SetCellAt(scores, r, 1, std::to_string(s.hw1));
    (void)ds.SetCellAt(scores, r, 2, std::to_string(s.hw2));
    (void)ds.SetCellAt(scores, r, 3, std::to_string(s.final_score));
    (void)ds.SetCellAt(scores, r, 4, std::to_string(s.grade));
    ++r;
  }
  // ---- Demographics sheet ----
  (void)ds.SetCellAt(demo, 0, 0, "student");
  (void)ds.SetCellAt(demo, 0, 1, "program");
  r = 1;
  for (const Student& s : students) {
    (void)ds.SetCellAt(demo, r, 0, s.name);
    (void)ds.SetCellAt(demo, r, 1, s.program);
    ++r;
  }

  std::printf("== 1. Students with >90 in at least one assignment ==========\n");
  (void)ds.SetCell("Scores", "G1",
                   "=DBSQL(\"SELECT student, hw1, hw2 FROM RANGETABLE(A1:E9) "
                   "WHERE hw1 > 90 OR hw2 > 90 ORDER BY student\")");
  std::printf("%s", ds.Show("Scores", "G1:I4").ValueOrDie().c_str());

  std::printf("\n== 2. Average grade by demographic group (cross-sheet join) \n");
  (void)ds.SetCell("Scores", "K1",
                   "=DBSQL(\"SELECT program, AVG(grade) avg_grade, COUNT(*) n "
                   "FROM RANGETABLE(A1:E9) NATURAL JOIN "
                   "RANGETABLE(Demo!A1:B9) GROUP BY program "
                   "ORDER BY avg_grade DESC\")");
  std::printf("%s", ds.Show("Scores", "K1:M3").ValueOrDie().c_str());

  std::printf("\n== 3. A grade correction updates both analyses ==============\n");
  (void)ds.SetCell("Scores", "B5", "93");  // dan's hw1: 70 -> 93
  std::printf("after dan's regrade:\n%s",
              ds.Show("Scores", "G1:I5").ValueOrDie().c_str());

  std::printf("\n== 4. Live course log (continuously added data, §1) =========\n");
  (void)ds.Sql("CREATE TABLE course_log (seq INT PRIMARY KEY, student TEXT, "
               "action TEXT)");
  (void)ds.SetCell("Scores", "O1",
                   "=DBSQL(\"SELECT student, COUNT(*) submissions "
                   "FROM course_log GROUP BY student ORDER BY submissions "
                   "DESC LIMIT 3\")");
  const char* actors[] = {"ann", "bob", "ann", "cat", "ann", "bob"};
  int seq = 0;
  for (const char* who : actors) {
    (void)ds.Sql("INSERT INTO course_log VALUES (" + std::to_string(seq++) +
                 ", '" + who + "', 'submit')");
  }
  std::printf("top submitters (auto-refreshed as rows arrive):\n%s",
              ds.Show("Scores", "O1:P3").ValueOrDie().c_str());

  std::printf("\ngradebook: done\n");
  return 0;
}
