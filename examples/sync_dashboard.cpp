// Sync dashboard: paper Figure 2c recreated — a DBTABLE-bound region plus a
// dependent DBSQL block, with modifications flowing both directions.
//
// "as modifications are made to the table on the front-end the data in the
//  relational database is updated, and the data displayed in cells ...
//  (corresponding to a DBSQL command referencing that data) is immediately
//  updated."
#include <cstdio>

#include "core/dataspread.h"

using dataspread::DataSpread;
using dataspread::Sheet;

namespace {
void Banner(const DataSpread& ds, const char* title) {
  (void)ds;
  std::printf("\n---- %s\n", title);
}
}  // namespace

int main() {
  DataSpread ds;
  Sheet* sheet = ds.AddSheet("Dash").ValueOrDie();
  (void)sheet;

  (void)ds.Sql("CREATE TABLE inventory (sku INT PRIMARY KEY, item TEXT, "
               "stock INT, price REAL)");
  (void)ds.Sql("INSERT INTO inventory VALUES "
               "(1, 'nails', 500, 0.1), (2, 'hammer', 12, 19.5), "
               "(3, 'saw', 3, 35.0), (4, 'tape', 40, 2.5)");

  // The bound region (A1 anchor) and a dependent analysis block (F1).
  (void)ds.ImportTable("Dash", "A1", "inventory");
  (void)ds.SetCell("Dash", "F1",
                   "=DBSQL(\"SELECT item, stock * price AS value "
                   "FROM inventory ORDER BY value DESC\")");
  (void)ds.SetCell("Dash", "F6", "=DBSQL(\"SELECT SUM(stock * price) "
                   "FROM inventory\")");

  Banner(ds, "initial state (bound region A1:D5, analysis F1:G4, total F6)");
  std::printf("%s", ds.Show("Dash", "A1:D5").ValueOrDie().c_str());
  std::printf("--\n%s", ds.Show("Dash", "F1:G4").ValueOrDie().c_str());
  std::printf("total inventory value: %s\n",
              ds.GetDisplay("Dash", "F6").ValueOrDie().c_str());

  Banner(ds, "front-end edit: hammer stock 12 -> 200 (cell C3)");
  (void)ds.SetCell("Dash", "C3", "200");
  auto db_view = ds.Sql("SELECT stock FROM inventory WHERE sku = 2")
                     .ValueOrDie();
  std::printf("database now stores stock = %s\n",
              db_view.rows[0][0].ToDisplayString().c_str());
  std::printf("analysis block re-ranked:\n%s",
              ds.Show("Dash", "F1:G4").ValueOrDie().c_str());
  std::printf("total: %s\n", ds.GetDisplay("Dash", "F6").ValueOrDie().c_str());

  Banner(ds, "back-end DML: price hike + a new product");
  (void)ds.Sql("UPDATE inventory SET price = price * 2 WHERE item = 'saw'");
  (void)ds.Sql("INSERT INTO inventory VALUES (5, 'drill', 7, 120.0)");
  std::printf("bound region refreshed:\n%s",
              ds.Show("Dash", "A1:D6").ValueOrDie().c_str());
  std::printf("analysis block:\n%s",
              ds.Show("Dash", "F1:G5").ValueOrDie().c_str());
  std::printf("total: %s\n", ds.GetDisplay("Dash", "F6").ValueOrDie().c_str());

  Banner(ds, "header edit renames the column (dynamic schema, §2.2)");
  (void)ds.SetCell("Dash", "C1", "on_hand");
  auto cols = ds.Sql("SELECT on_hand FROM inventory WHERE sku = 5")
                  .ValueOrDie();
  std::printf("SELECT on_hand works; drill has %s units\n",
              cols.rows[0][0].ToDisplayString().c_str());

  std::printf("\nsync_dashboard: done\n");
  return 0;
}
