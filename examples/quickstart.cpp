// Quickstart: the DataSpread public API in one tour — cells, formulas,
// SQL back-end, DBSQL/DBTABLE hybrid constructs, and two-way sync.
//
// Build & run:  ./build/examples/quickstart
#include <cstdio>

#include "core/dataspread.h"

using dataspread::DataSpread;
using dataspread::Sheet;

#define CHECK_OK(expr)                                            \
  do {                                                            \
    auto _s = (expr);                                             \
    if (!_s.ok()) {                                               \
      std::printf("FAILED: %s\n", _s.ToString().c_str());         \
      return 1;                                                   \
    }                                                             \
  } while (false)

int main() {
  DataSpread ds;
  Sheet* sheet = ds.AddSheet("Sheet1").ValueOrDie();
  (void)sheet;

  std::printf("== 1. Spreadsheet basics =====================================\n");
  CHECK_OK(ds.SetCell("Sheet1", "A1", "price"));
  CHECK_OK(ds.SetCell("Sheet1", "A2", "19.5"));
  CHECK_OK(ds.SetCell("Sheet1", "A3", "22"));
  CHECK_OK(ds.SetCell("Sheet1", "A4", "=SUM(A2:A3)"));
  std::printf("A4 = SUM(A2:A3) -> %s\n",
              ds.GetDisplay("Sheet1", "A4").ValueOrDie().c_str());

  std::printf("\n== 2. The relational back-end ================================\n");
  CHECK_OK(ds.Sql("CREATE TABLE products (sku INT PRIMARY KEY, name TEXT, "
                  "price REAL)").status());
  CHECK_OK(ds.Sql("INSERT INTO products VALUES (1, 'nail', 0.1), "
                  "(2, 'hammer', 19.5), (3, 'saw', 35.0)").status());
  auto rs = ds.Sql("SELECT name, price FROM products WHERE price > 1 "
                   "ORDER BY price DESC").ValueOrDie();
  std::printf("%s", rs.ToString().c_str());

  std::printf("\n== 3. DBSQL: SQL whose result lives in the sheet ============\n");
  CHECK_OK(ds.SetCell("Sheet1", "C1",
                      "=DBSQL(\"SELECT name, price FROM products "
                      "WHERE price >= RANGEVALUE(A2) ORDER BY price\")"));
  std::printf("C1:D2 spill:\n%s",
              ds.Show("Sheet1", "C1:D2").ValueOrDie().c_str());

  std::printf("\n== 4. DBTABLE: a live two-way bound region ==================\n");
  CHECK_OK(ds.ImportTable("Sheet1", "F1", "products").status());
  std::printf("bound region F1:H4:\n%s",
              ds.Show("Sheet1", "F1:H4").ValueOrDie().c_str());

  std::printf("\n== 5. Two-way sync ==========================================\n");
  // Front-end edit -> keyed UPDATE in the database.
  CHECK_OK(ds.SetCell("Sheet1", "H2", "0.25"));  // nail's price
  auto price = ds.Sql("SELECT price FROM products WHERE sku = 1").ValueOrDie();
  std::printf("front-end edit H2=0.25 -> DB says nail costs %s\n",
              price.rows[0][0].ToDisplayString().c_str());
  // Back-end update -> sheet refresh + dependent DBSQL re-run.
  CHECK_OK(ds.Sql("UPDATE products SET price = 99 WHERE sku = 3").status());
  std::printf("back-end UPDATE saw=99 -> bound cell H4 shows %s\n",
              ds.GetDisplay("Sheet1", "H4").ValueOrDie().c_str());

  std::printf("\n== 6. Export a range as a table =============================\n");
  CHECK_OK(ds.SetCell("Sheet1", "J1", "city"));
  CHECK_OK(ds.SetCell("Sheet1", "K1", "pop"));
  CHECK_OK(ds.SetCell("Sheet1", "J2", "oslo"));
  CHECK_OK(ds.SetCell("Sheet1", "K2", "700000"));
  CHECK_OK(ds.CreateTableFromRange("Sheet1", "J1:K2", "cities", "city")
               .status());
  std::printf("%s", ds.Sql("SELECT * FROM cities").ValueOrDie()
                        .ToString().c_str());

  std::printf("\nquickstart: all steps succeeded\n");
  return 0;
}
