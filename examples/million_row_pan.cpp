// Million-row pan: the paper's scalability pitch (§1).
//
// "in Microsoft Excel, it is common knowledge that beyond a few 100s of
//  thousands of rows, the software is no longer responsive. ... Even though
//  the spreadsheet can only support a few rows, as the user pans through the
//  spreadsheet, the burden of supplying or refreshing the current window is
//  placed on the relational database, which is very efficient."
#include <chrono>
#include <cstdio>

#include "core/dataspread.h"

using dataspread::DataSpread;
using dataspread::DataSpreadOptions;
using dataspread::Sheet;
using dataspread::Value;

namespace {
double MsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - t0)
      .count();
}
}  // namespace

int main() {
  constexpr size_t kRows = 1000000;
  DataSpreadOptions opts;
  opts.auto_pump = false;
  opts.binding_window = 128;
  opts.viewport_rows = 50;
  DataSpread ds(opts);

  std::printf("loading %zu rows into the embedded database...\n", kRows);
  auto t0 = std::chrono::steady_clock::now();
  auto table =
      ds.db()
          .CreateTable("events",
                       dataspread::Schema(
                           {dataspread::ColumnDef{"id", dataspread::DataType::kInt, true},
                            dataspread::ColumnDef{"payload", dataspread::DataType::kText, false},
                            dataspread::ColumnDef{"amount", dataspread::DataType::kReal, false}}))
          .ValueOrDie();
  for (size_t i = 0; i < kRows; ++i) {
    (void)table->AppendRow({Value::Int(static_cast<int64_t>(i)),
                            Value::Text("evt" + std::to_string(i)),
                            Value::Real(static_cast<double>(i % 1000))});
  }
  std::printf("  load: %.1f ms\n", MsSince(t0));

  Sheet* sheet = ds.AddSheet("Pane").ValueOrDie();
  t0 = std::chrono::steady_clock::now();
  (void)ds.ImportTable("Pane", "A1", "events");
  ds.Pump();
  std::printf("  DBTABLE import (window of %zu rows materialized): %.1f ms\n",
              opts.binding_window, MsSince(t0));
  std::printf("  sheet holds %zu cells for a %zu-row table\n",
              sheet->cell_count(), kRows);

  // Pan through the table; each pane move fetches only the window.
  std::printf("\npanning a 50-row pane through the million rows:\n");
  for (int64_t top : {100, 250000, 500000, 750000, 999950}) {
    t0 = std::chrono::steady_clock::now();
    (void)ds.ScrollTo("Pane", top, 0);
    ds.Pump();
    Value first = ds.GetValueAt(sheet, top, 0);
    std::printf("  pane @ row %7lld: %.2f ms (first visible id = %s)\n",
                static_cast<long long>(top), MsSince(t0),
                first.ToDisplayString().c_str());
  }

  // The pane is live: edits at the bottom of the table round-trip.
  t0 = std::chrono::steady_clock::now();
  (void)ds.SetCellAt(sheet, 999950, 1, "edited_at_the_bottom");
  ds.Pump();
  auto check = ds.Sql("SELECT payload FROM events WHERE id = 999949")
                   .ValueOrDie();
  std::printf("\nedit at row 999950 round-tripped in %.2f ms -> DB says '%s'\n",
              MsSince(t0), check.rows[0][0].ToDisplayString().c_str());

  // And SQL over the whole million stays available.
  t0 = std::chrono::steady_clock::now();
  auto agg = ds.Sql("SELECT COUNT(*), AVG(amount) FROM events").ValueOrDie();
  std::printf("full-table aggregate in %.1f ms: count=%s avg=%s\n",
              MsSince(t0), agg.rows[0][0].ToDisplayString().c_str(),
              agg.rows[0][1].ToDisplayString().c_str());
  return 0;
}
