// Movie explorer: paper Figure 2a recreated end-to-end.
//
// "the SQL query in B3 uses data from three relations in the database
//  (MOVIES, MOVIES2ACTORS, ACTORS), and references the two cells above
//  (B1 and B2), via special relative referencing commands."
#include <cstdio>

#include "core/dataspread.h"

using dataspread::DataSpread;
using dataspread::Sheet;

int main() {
  DataSpread ds;
  Sheet* sheet = ds.AddSheet("Explorer").ValueOrDie();
  (void)sheet;

  // The three demo relations.
  (void)ds.Sql("CREATE TABLE movies (movieid INT PRIMARY KEY, title TEXT, "
               "year INT)");
  (void)ds.Sql("CREATE TABLE movies2actors (movieid INT, actorid INT)");
  (void)ds.Sql("CREATE TABLE actors (actorid INT PRIMARY KEY, name TEXT)");
  (void)ds.Sql(
      "INSERT INTO movies VALUES (1, 'Alien', 1979), (2, 'Aliens', 1986), "
      "(3, 'Avatar', 2009), (4, 'Brazil', 1985), (5, 'Heat', 1995), "
      "(6, 'Gorillas in the Mist', 1988)");
  (void)ds.Sql("INSERT INTO actors VALUES (1, 'Sigourney Weaver'), "
               "(2, 'Robert De Niro'), (3, 'Al Pacino')");
  (void)ds.Sql("INSERT INTO movies2actors VALUES (1, 1), (2, 1), (3, 1), "
               "(6, 1), (4, 2), (5, 2), (5, 3)");

  // B1, B2: query parameters living in cells. B3: the Figure-2a DBSQL.
  (void)ds.SetCell("Explorer", "A1", "earliest year:");
  (void)ds.SetCell("Explorer", "B1", "1980");
  (void)ds.SetCell("Explorer", "A2", "actor:");
  (void)ds.SetCell("Explorer", "B2", "Sigourney Weaver");
  (void)ds.SetCell("Explorer", "B3",
                   "=DBSQL(\"SELECT title, year FROM movies "
                   "NATURAL JOIN movies2actors NATURAL JOIN actors "
                   "WHERE year >= RANGEVALUE(B1) AND name = RANGEVALUE(B2) "
                   "ORDER BY year\")");

  std::printf("filmography of %s since %s (query output spans B3:C5):\n%s\n",
              ds.GetDisplay("Explorer", "B2").ValueOrDie().c_str(),
              ds.GetDisplay("Explorer", "B1").ValueOrDie().c_str(),
              ds.Show("Explorer", "B3:C5").ValueOrDie().c_str());

  // Relative referencing in action: change the parameters, the query follows.
  (void)ds.SetCell("Explorer", "B2", "Robert De Niro");
  (void)ds.SetCell("Explorer", "B1", "1975");
  std::printf("after re-parameterizing to %s since %s:\n%s\n",
              ds.GetDisplay("Explorer", "B2").ValueOrDie().c_str(),
              ds.GetDisplay("Explorer", "B1").ValueOrDie().c_str(),
              ds.Show("Explorer", "B3:C5").ValueOrDie().c_str());

  // And the back-end keeps the front-end fresh (Figure 2c flavor).
  (void)ds.Sql("INSERT INTO movies VALUES (7, 'The Irishman', 2019)");
  (void)ds.Sql("INSERT INTO movies2actors VALUES (7, 2)");
  std::printf("after the back-end adds The Irishman:\n%s\n",
              ds.Show("Explorer", "B3:C6").ValueOrDie().c_str());

  // Ordinary spreadsheet formulas compose with the spill.
  (void)ds.SetCell("Explorer", "E1", "=COUNTA(B3:B12)");
  std::printf("movies listed (COUNTA over the spill): %s\n",
              ds.GetDisplay("Explorer", "E1").ValueOrDie().c_str());
  return 0;
}
