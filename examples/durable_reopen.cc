// Durable reopen, the whole story in one binary (docs/DURABILITY.md):
//
//   1. a child process opens a database by path, creates a table, commits
//      rows, runs a schema change — then SIGKILLs itself mid-stream, the
//      harshest crash there is (no destructors, no flushes, nothing);
//   2. the parent reopens the database by path alone: WAL replay restores
//      the pages, catalog recovery restores the tables/columns/display
//      order, and every acknowledged row is simply *there*.
//
// Build & run:  cmake --build build --target example_durable_reopen &&
//               ./build/example_durable_reopen
#include <sys/types.h>
#include <sys/wait.h>

#include <csignal>
#include <cstdio>
#include <string>
#include <unistd.h>

#include "db/database.h"

using namespace dataspread;

namespace {

constexpr int kCommittedRows = 1000;

int ChildWorkload(const std::string& base) {
  auto db = Database::Open(base);
  auto status =
      db->Execute("CREATE TABLE sensors (id INT PRIMARY KEY, reading REAL)");
  if (!status.ok()) return 1;
  Table* t = db->catalog().GetTable("sensors").ValueOrDie();
  for (int i = 0; i < kCommittedRows; ++i) {
    (void)t->AppendRow({Value::Int(i), Value::Real(i * 0.25)});
  }
  // A schema change: DDL records are commit points all by themselves.
  (void)db->Execute("ALTER TABLE sensors ADD COLUMN unit TEXT DEFAULT 'mV'");
  // The durability barrier: everything above survives from here on.
  db->pager().SyncWal();
  // Keep writing past the barrier — these rows *may* survive (the OS
  // usually keeps them), but only the 1000 synced ones are guaranteed.
  for (int i = kCommittedRows; i < kCommittedRows + 500; ++i) {
    (void)t->AppendRow({Value::Int(i), Value::Real(i * 0.25), Value::Null()});
  }
  std::printf("[child] wrote %d committed rows + 500 unsynced, now "
              "SIGKILLing myself\n",
              kCommittedRows);
  std::fflush(stdout);
  ::kill(::getpid(), SIGKILL);  // no destructor, no checkpoint, no mercy
  return 0;                     // never reached
}

}  // namespace

int main() {
  std::string base = "/tmp/ds_durable_reopen_example";
  std::remove((base + ".wal").c_str());
  std::remove((base + ".pages").c_str());

  pid_t pid = ::fork();
  if (pid == 0) return ChildWorkload(base);
  int wstatus = 0;
  ::waitpid(pid, &wstatus, 0);
  std::printf("[parent] child died with SIGKILL: %s\n",
              WIFSIGNALED(wstatus) && WTERMSIG(wstatus) == SIGKILL ? "yes"
                                                                   : "no");

  // Reopen by path alone: no schema rebuild, no import, no application
  // state — the database *is* the files.
  auto db = Database::Open(base);
  Table* t = db->catalog().GetTable("sensors").ValueOrDie();
  std::printf("[parent] recovered table '%s' (%s), %zu rows, schema: %s\n",
              t->name().c_str(), StorageModelName(t->storage().model()),
              t->num_rows(), t->schema().ToString().c_str());
  if (t->num_rows() < kCommittedRows) {
    std::printf("[parent] DURABILITY HOLE: fewer rows than committed!\n");
    return 1;
  }
  Row row = t->GetRowAt(41).ValueOrDie();
  std::printf("[parent] row 41: id=%lld reading=%.2f unit=%s\n",
              static_cast<long long>(row[0].int_value()),
              row[1].real_value(), row[2].ToDisplayString().c_str());
  auto count = db->Execute("SELECT COUNT(*) FROM sensors WHERE unit = 'mV'");
  std::printf("[parent] rows carrying the post-crash-recovered column "
              "default: %s\n",
              count.ValueOrDie().rows[0][0].ToDisplayString().c_str());
  std::printf("[parent] done — the spreadsheet really is the database.\n");

  std::remove((base + ".wal").c_str());
  std::remove((base + ".pages").c_str());
  return 0;
}
