file(REMOVE_RECURSE
  "CMakeFiles/pager_test.dir/tests/pager_test.cc.o"
  "CMakeFiles/pager_test.dir/tests/pager_test.cc.o.d"
  "pager_test"
  "pager_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/pager_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
