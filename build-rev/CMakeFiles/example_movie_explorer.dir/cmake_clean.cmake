file(REMOVE_RECURSE
  "CMakeFiles/example_movie_explorer.dir/examples/movie_explorer.cpp.o"
  "CMakeFiles/example_movie_explorer.dir/examples/movie_explorer.cpp.o.d"
  "example_movie_explorer"
  "example_movie_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_movie_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
