# Empty compiler generated dependencies file for example_movie_explorer.
# This may be replaced when dependencies are built.
