# Empty dependencies file for bench_positional_index.
# This may be replaced when dependencies are built.
