file(REMOVE_RECURSE
  "CMakeFiles/bench_positional_index.dir/bench/bench_positional_index.cc.o"
  "CMakeFiles/bench_positional_index.dir/bench/bench_positional_index.cc.o.d"
  "bench_positional_index"
  "bench_positional_index.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_positional_index.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
