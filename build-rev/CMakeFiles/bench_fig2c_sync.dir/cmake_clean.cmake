file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2c_sync.dir/bench/bench_fig2c_sync.cc.o"
  "CMakeFiles/bench_fig2c_sync.dir/bench/bench_fig2c_sync.cc.o.d"
  "bench_fig2c_sync"
  "bench_fig2c_sync.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2c_sync.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
