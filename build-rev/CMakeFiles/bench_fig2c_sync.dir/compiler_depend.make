# Empty compiler generated dependencies file for bench_fig2c_sync.
# This may be replaced when dependencies are built.
