file(REMOVE_RECURSE
  "CMakeFiles/sheet_test.dir/tests/sheet_test.cc.o"
  "CMakeFiles/sheet_test.dir/tests/sheet_test.cc.o.d"
  "sheet_test"
  "sheet_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/sheet_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
