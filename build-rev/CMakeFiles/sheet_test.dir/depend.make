# Empty dependencies file for sheet_test.
# This may be replaced when dependencies are built.
