# Empty dependencies file for example_gradebook.
# This may be replaced when dependencies are built.
