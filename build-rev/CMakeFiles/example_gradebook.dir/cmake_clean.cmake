file(REMOVE_RECURSE
  "CMakeFiles/example_gradebook.dir/examples/gradebook.cpp.o"
  "CMakeFiles/example_gradebook.dir/examples/gradebook.cpp.o.d"
  "example_gradebook"
  "example_gradebook.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_gradebook.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
