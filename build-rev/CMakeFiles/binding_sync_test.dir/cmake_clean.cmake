file(REMOVE_RECURSE
  "CMakeFiles/binding_sync_test.dir/tests/binding_sync_test.cc.o"
  "CMakeFiles/binding_sync_test.dir/tests/binding_sync_test.cc.o.d"
  "binding_sync_test"
  "binding_sync_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/binding_sync_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
