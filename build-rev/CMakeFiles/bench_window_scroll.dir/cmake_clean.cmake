file(REMOVE_RECURSE
  "CMakeFiles/bench_window_scroll.dir/bench/bench_window_scroll.cc.o"
  "CMakeFiles/bench_window_scroll.dir/bench/bench_window_scroll.cc.o.d"
  "bench_window_scroll"
  "bench_window_scroll.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_window_scroll.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
