# Empty compiler generated dependencies file for bench_window_scroll.
# This may be replaced when dependencies are built.
