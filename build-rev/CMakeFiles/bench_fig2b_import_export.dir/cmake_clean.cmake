file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2b_import_export.dir/bench/bench_fig2b_import_export.cc.o"
  "CMakeFiles/bench_fig2b_import_export.dir/bench/bench_fig2b_import_export.cc.o.d"
  "bench_fig2b_import_export"
  "bench_fig2b_import_export.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2b_import_export.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
