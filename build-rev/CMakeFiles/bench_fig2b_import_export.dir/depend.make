# Empty dependencies file for bench_fig2b_import_export.
# This may be replaced when dependencies are built.
