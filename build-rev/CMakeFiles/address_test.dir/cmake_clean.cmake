file(REMOVE_RECURSE
  "CMakeFiles/address_test.dir/tests/address_test.cc.o"
  "CMakeFiles/address_test.dir/tests/address_test.cc.o.d"
  "address_test"
  "address_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/address_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
