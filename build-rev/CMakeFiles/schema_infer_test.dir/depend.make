# Empty dependencies file for schema_infer_test.
# This may be replaced when dependencies are built.
