file(REMOVE_RECURSE
  "CMakeFiles/schema_infer_test.dir/tests/schema_infer_test.cc.o"
  "CMakeFiles/schema_infer_test.dir/tests/schema_infer_test.cc.o.d"
  "schema_infer_test"
  "schema_infer_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/schema_infer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
