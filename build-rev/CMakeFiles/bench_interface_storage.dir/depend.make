# Empty dependencies file for bench_interface_storage.
# This may be replaced when dependencies are built.
