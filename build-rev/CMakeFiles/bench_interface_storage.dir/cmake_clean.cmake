file(REMOVE_RECURSE
  "CMakeFiles/bench_interface_storage.dir/bench/bench_interface_storage.cc.o"
  "CMakeFiles/bench_interface_storage.dir/bench/bench_interface_storage.cc.o.d"
  "bench_interface_storage"
  "bench_interface_storage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_interface_storage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
