# Empty compiler generated dependencies file for example_million_row_pan.
# This may be replaced when dependencies are built.
