file(REMOVE_RECURSE
  "CMakeFiles/example_million_row_pan.dir/examples/million_row_pan.cpp.o"
  "CMakeFiles/example_million_row_pan.dir/examples/million_row_pan.cpp.o.d"
  "example_million_row_pan"
  "example_million_row_pan.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_million_row_pan.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
