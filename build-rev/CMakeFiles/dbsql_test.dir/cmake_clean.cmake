file(REMOVE_RECURSE
  "CMakeFiles/dbsql_test.dir/tests/dbsql_test.cc.o"
  "CMakeFiles/dbsql_test.dir/tests/dbsql_test.cc.o.d"
  "dbsql_test"
  "dbsql_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbsql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
