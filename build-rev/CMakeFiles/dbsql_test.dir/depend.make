# Empty dependencies file for dbsql_test.
# This may be replaced when dependencies are built.
