file(REMOVE_RECURSE
  "CMakeFiles/dataspread_bench_common.dir/bench/workloads.cc.o"
  "CMakeFiles/dataspread_bench_common.dir/bench/workloads.cc.o.d"
  "libdataspread_bench_common.a"
  "libdataspread_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dataspread_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
