# Empty dependencies file for dataspread_bench_common.
# This may be replaced when dependencies are built.
