file(REMOVE_RECURSE
  "libdataspread_bench_common.a"
)
