# Empty compiler generated dependencies file for bench_formula_recalc.
# This may be replaced when dependencies are built.
