file(REMOVE_RECURSE
  "CMakeFiles/bench_formula_recalc.dir/bench/bench_formula_recalc.cc.o"
  "CMakeFiles/bench_formula_recalc.dir/bench/bench_formula_recalc.cc.o.d"
  "bench_formula_recalc"
  "bench_formula_recalc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_formula_recalc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
