# Empty dependencies file for bench_schema_change.
# This may be replaced when dependencies are built.
