file(REMOVE_RECURSE
  "CMakeFiles/bench_schema_change.dir/bench/bench_schema_change.cc.o"
  "CMakeFiles/bench_schema_change.dir/bench/bench_schema_change.cc.o.d"
  "bench_schema_change"
  "bench_schema_change.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_schema_change.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
