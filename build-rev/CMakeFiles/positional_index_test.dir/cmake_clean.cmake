file(REMOVE_RECURSE
  "CMakeFiles/positional_index_test.dir/tests/positional_index_test.cc.o"
  "CMakeFiles/positional_index_test.dir/tests/positional_index_test.cc.o.d"
  "positional_index_test"
  "positional_index_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/positional_index_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
