# Empty compiler generated dependencies file for positional_index_test.
# This may be replaced when dependencies are built.
