# Empty compiler generated dependencies file for example_sync_dashboard.
# This may be replaced when dependencies are built.
