file(REMOVE_RECURSE
  "CMakeFiles/example_sync_dashboard.dir/examples/sync_dashboard.cpp.o"
  "CMakeFiles/example_sync_dashboard.dir/examples/sync_dashboard.cpp.o.d"
  "example_sync_dashboard"
  "example_sync_dashboard.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_sync_dashboard.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
