# Empty compiler generated dependencies file for bench_fig2a_dbsql.
# This may be replaced when dependencies are built.
