file(REMOVE_RECURSE
  "CMakeFiles/bench_fig2a_dbsql.dir/bench/bench_fig2a_dbsql.cc.o"
  "CMakeFiles/bench_fig2a_dbsql.dir/bench/bench_fig2a_dbsql.cc.o.d"
  "bench_fig2a_dbsql"
  "bench_fig2a_dbsql.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig2a_dbsql.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
