# Empty compiler generated dependencies file for dataspread.
# This may be replaced when dependencies are built.
