file(REMOVE_RECURSE
  "libdataspread.a"
)
