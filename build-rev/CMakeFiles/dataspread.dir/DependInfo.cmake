
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/catalog/catalog.cc" "CMakeFiles/dataspread.dir/src/catalog/catalog.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/catalog/catalog.cc.o.d"
  "/root/repo/src/catalog/schema.cc" "CMakeFiles/dataspread.dir/src/catalog/schema.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/catalog/schema.cc.o.d"
  "/root/repo/src/catalog/table.cc" "CMakeFiles/dataspread.dir/src/catalog/table.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/catalog/table.cc.o.d"
  "/root/repo/src/common/status.cc" "CMakeFiles/dataspread.dir/src/common/status.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/common/status.cc.o.d"
  "/root/repo/src/common/str_util.cc" "CMakeFiles/dataspread.dir/src/common/str_util.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/common/str_util.cc.o.d"
  "/root/repo/src/core/binding.cc" "CMakeFiles/dataspread.dir/src/core/binding.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/core/binding.cc.o.d"
  "/root/repo/src/core/dataspread.cc" "CMakeFiles/dataspread.dir/src/core/dataspread.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/core/dataspread.cc.o.d"
  "/root/repo/src/core/interface_manager.cc" "CMakeFiles/dataspread.dir/src/core/interface_manager.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/core/interface_manager.cc.o.d"
  "/root/repo/src/core/scheduler.cc" "CMakeFiles/dataspread.dir/src/core/scheduler.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/core/scheduler.cc.o.d"
  "/root/repo/src/core/schema_infer.cc" "CMakeFiles/dataspread.dir/src/core/schema_infer.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/core/schema_infer.cc.o.d"
  "/root/repo/src/core/window_manager.cc" "CMakeFiles/dataspread.dir/src/core/window_manager.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/core/window_manager.cc.o.d"
  "/root/repo/src/db/database.cc" "CMakeFiles/dataspread.dir/src/db/database.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/db/database.cc.o.d"
  "/root/repo/src/exec/aggregates.cc" "CMakeFiles/dataspread.dir/src/exec/aggregates.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/exec/aggregates.cc.o.d"
  "/root/repo/src/exec/binder.cc" "CMakeFiles/dataspread.dir/src/exec/binder.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/exec/binder.cc.o.d"
  "/root/repo/src/exec/expr_eval.cc" "CMakeFiles/dataspread.dir/src/exec/expr_eval.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/exec/expr_eval.cc.o.d"
  "/root/repo/src/exec/operators.cc" "CMakeFiles/dataspread.dir/src/exec/operators.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/exec/operators.cc.o.d"
  "/root/repo/src/exec/planner.cc" "CMakeFiles/dataspread.dir/src/exec/planner.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/exec/planner.cc.o.d"
  "/root/repo/src/formula/engine.cc" "CMakeFiles/dataspread.dir/src/formula/engine.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/formula/engine.cc.o.d"
  "/root/repo/src/formula/formula_ast.cc" "CMakeFiles/dataspread.dir/src/formula/formula_ast.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/formula/formula_ast.cc.o.d"
  "/root/repo/src/formula/formula_lexer.cc" "CMakeFiles/dataspread.dir/src/formula/formula_lexer.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/formula/formula_lexer.cc.o.d"
  "/root/repo/src/formula/formula_parser.cc" "CMakeFiles/dataspread.dir/src/formula/formula_parser.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/formula/formula_parser.cc.o.d"
  "/root/repo/src/formula/functions.cc" "CMakeFiles/dataspread.dir/src/formula/functions.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/formula/functions.cc.o.d"
  "/root/repo/src/index/grid_index.cc" "CMakeFiles/dataspread.dir/src/index/grid_index.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/index/grid_index.cc.o.d"
  "/root/repo/src/index/offset_array.cc" "CMakeFiles/dataspread.dir/src/index/offset_array.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/index/offset_array.cc.o.d"
  "/root/repo/src/index/positional_index.cc" "CMakeFiles/dataspread.dir/src/index/positional_index.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/index/positional_index.cc.o.d"
  "/root/repo/src/io/csv.cc" "CMakeFiles/dataspread.dir/src/io/csv.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/io/csv.cc.o.d"
  "/root/repo/src/sheet/address.cc" "CMakeFiles/dataspread.dir/src/sheet/address.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/sheet/address.cc.o.d"
  "/root/repo/src/sheet/sheet.cc" "CMakeFiles/dataspread.dir/src/sheet/sheet.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/sheet/sheet.cc.o.d"
  "/root/repo/src/sheet/workbook.cc" "CMakeFiles/dataspread.dir/src/sheet/workbook.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/sheet/workbook.cc.o.d"
  "/root/repo/src/sql/ast.cc" "CMakeFiles/dataspread.dir/src/sql/ast.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/sql/ast.cc.o.d"
  "/root/repo/src/sql/lexer.cc" "CMakeFiles/dataspread.dir/src/sql/lexer.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/sql/lexer.cc.o.d"
  "/root/repo/src/sql/parser.cc" "CMakeFiles/dataspread.dir/src/sql/parser.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/sql/parser.cc.o.d"
  "/root/repo/src/storage/column_store.cc" "CMakeFiles/dataspread.dir/src/storage/column_store.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/storage/column_store.cc.o.d"
  "/root/repo/src/storage/hybrid_store.cc" "CMakeFiles/dataspread.dir/src/storage/hybrid_store.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/storage/hybrid_store.cc.o.d"
  "/root/repo/src/storage/page.cc" "CMakeFiles/dataspread.dir/src/storage/page.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/storage/page.cc.o.d"
  "/root/repo/src/storage/pager.cc" "CMakeFiles/dataspread.dir/src/storage/pager.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/storage/pager.cc.o.d"
  "/root/repo/src/storage/rcv_store.cc" "CMakeFiles/dataspread.dir/src/storage/rcv_store.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/storage/rcv_store.cc.o.d"
  "/root/repo/src/storage/row_store.cc" "CMakeFiles/dataspread.dir/src/storage/row_store.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/storage/row_store.cc.o.d"
  "/root/repo/src/storage/spill_file.cc" "CMakeFiles/dataspread.dir/src/storage/spill_file.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/storage/spill_file.cc.o.d"
  "/root/repo/src/storage/table_storage.cc" "CMakeFiles/dataspread.dir/src/storage/table_storage.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/storage/table_storage.cc.o.d"
  "/root/repo/src/types/data_type.cc" "CMakeFiles/dataspread.dir/src/types/data_type.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/types/data_type.cc.o.d"
  "/root/repo/src/types/value.cc" "CMakeFiles/dataspread.dir/src/types/value.cc.o" "gcc" "CMakeFiles/dataspread.dir/src/types/value.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
