file(REMOVE_RECURSE
  "CMakeFiles/bench_storage_models.dir/bench/bench_storage_models.cc.o"
  "CMakeFiles/bench_storage_models.dir/bench/bench_storage_models.cc.o.d"
  "bench_storage_models"
  "bench_storage_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_storage_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
