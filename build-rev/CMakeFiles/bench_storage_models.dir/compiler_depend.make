# Empty compiler generated dependencies file for bench_storage_models.
# This may be replaced when dependencies are built.
