#include <gtest/gtest.h>

#include <unordered_set>

#include "storage/pager.h"
#include "storage/table_storage.h"

namespace dataspread {
namespace {

using storage::FileId;
using storage::PageKey;
using storage::PageKeyHash;
using storage::Pager;
using storage::ValuePage;

// ---------------------------------------------------------------------------
// Slot access, epoch accounting, per-file isolation
// ---------------------------------------------------------------------------

TEST(PagerTest, WritesGrowFilesAndReadBack) {
  Pager pager;
  FileId f = pager.CreateFile();
  EXPECT_EQ(pager.FilePages(f), 0u);
  EXPECT_EQ(pager.FileSize(f), 0u);

  pager.Write(f, 0, Value::Int(7));
  pager.Write(f, Pager::kSlotsPerPage + 3, Value::Text("x"));
  EXPECT_EQ(pager.FilePages(f), 2u);
  EXPECT_EQ(pager.FileSize(f), Pager::kSlotsPerPage + 4);
  EXPECT_EQ(pager.Read(f, 0), Value::Int(7));
  EXPECT_EQ(pager.Read(f, Pager::kSlotsPerPage + 3), Value::Text("x"));
  // Allocated-but-never-written slots read as NULL.
  EXPECT_TRUE(pager.Read(f, 5).is_null());
}

TEST(PagerTest, EpochCountsDistinctPages) {
  Pager pager;
  FileId f = pager.CreateFile();
  pager.BeginEpoch();
  // 3 * kSlotsPerPage slots written sequentially -> exactly 3 distinct pages.
  for (uint64_t s = 0; s < 3 * Pager::kSlotsPerPage; ++s) {
    pager.Write(f, s, Value::Int(1));
  }
  EXPECT_EQ(pager.EpochPagesWritten(), 3u);
  EXPECT_EQ(pager.EpochPagesRead(), 0u);
  EXPECT_EQ(pager.stats().slot_writes, 3 * Pager::kSlotsPerPage);

  pager.BeginEpoch();
  (void)pager.Read(f, 0);
  (void)pager.Read(f, 1);  // same page: still 1 distinct
  (void)pager.Read(f, Pager::kSlotsPerPage);
  EXPECT_EQ(pager.EpochPagesRead(), 2u);
  EXPECT_EQ(pager.EpochPagesWritten(), 0u);
}

// Satellite regression: the old epoch key packed (file << 24) ^ page_index
// into one uint64, so distinct (file, page) pairs aliased once a chain
// passed 2^24 pages (or file ids grew large) — undercounting distinct pages
// exactly on the billion-cell workloads the accounting exists for. PageKey
// is a genuine two-field key: identity is equality of both fields, never a
// packing artifact.
TEST(PagerTest, EpochPageKeyNeverAliasesDistinctFilePagePairs) {
  auto old_key = [](uint64_t file, uint64_t page) {
    return (file << 24) ^ page;
  };
  // The documented collision: (file 1, page 2^25) vs (file 3, page 0).
  ASSERT_EQ(old_key(1, 2ull << 24), old_key(3, 0))
      << "collision premise of this regression no longer holds";
  PageKey a{1, 2ull << 24};
  PageKey b{3, 0};
  EXPECT_FALSE(a == b);
  std::unordered_set<PageKey, PageKeyHash> epoch;
  epoch.insert(a);
  epoch.insert(b);
  epoch.insert(a);  // dedup still works for genuinely equal keys
  EXPECT_EQ(epoch.size(), 2u);
  // A couple more formerly-aliasing families, including huge file ids that
  // the 24-bit shift used to truncate into each other.
  epoch.clear();
  for (uint64_t file : {1ull, 1ull << 41, (1ull << 41) + 1}) {
    for (uint64_t page : {0ull, 1ull << 24, 1ull << 40}) {
      epoch.insert(PageKey{file, page});
    }
  }
  EXPECT_EQ(epoch.size(), 9u);
}

TEST(PagerTest, PerFileIsolation) {
  Pager pager;
  FileId a = pager.CreateFile();
  FileId b = pager.CreateFile();
  pager.BeginEpoch();
  pager.Write(a, 0, Value::Int(1));
  pager.Write(b, 0, Value::Int(2));
  // Same slot number, different files: two distinct pages.
  EXPECT_EQ(pager.EpochPagesWritten(), 2u);
  EXPECT_EQ(pager.Read(a, 0), Value::Int(1));
  EXPECT_EQ(pager.Read(b, 0), Value::Int(2));

  // Dropping one file never touches the other's pages.
  pager.DropFile(a);
  EXPECT_FALSE(pager.HasFile(a));
  EXPECT_TRUE(pager.HasFile(b));
  EXPECT_EQ(pager.Read(b, 0), Value::Int(2));
}

TEST(PagerTest, AccountingDisabledSkipsCountersButKeepsState) {
  Pager pager;
  FileId f = pager.CreateFile();
  pager.set_accounting_enabled(false);
  pager.BeginEpoch();
  pager.Write(f, 0, Value::Int(9));
  EXPECT_EQ(pager.EpochPagesWritten(), 0u);
  EXPECT_EQ(pager.stats().slot_writes, 0u);
  // The physical write happened and the page is dirty regardless.
  EXPECT_EQ(pager.Read(f, 0), Value::Int(9));
  ValuePage* page = pager.Pin(f, 0);
  EXPECT_TRUE(page->dirty());
  pager.Unpin(page, /*dirtied=*/false);
}

TEST(PagerTest, TakeMovesValueOutAndCountsARead) {
  Pager pager;
  FileId f = pager.CreateFile();
  pager.Write(f, 0, Value::Text("payload"));
  pager.BeginEpoch();
  Value v = pager.Take(f, 0);
  EXPECT_EQ(v, Value::Text("payload"));
  EXPECT_TRUE(pager.Read(f, 0).is_null());
  EXPECT_EQ(pager.EpochPagesRead(), 1u);
}

// ---------------------------------------------------------------------------
// Pin/unpin, dirty tracking, flushing
// ---------------------------------------------------------------------------

TEST(PagerTest, PinUnpinAndDirtyLifecycle) {
  Pager pager;
  FileId f = pager.CreateFile();
  ValuePage* page = pager.Pin(f, 0);  // grows the chain
  ASSERT_NE(page, nullptr);
  EXPECT_EQ(page->pin_count(), 1u);
  EXPECT_EQ(page->file(), f);
  EXPECT_EQ(pager.pinned_pages(), 1u);
  EXPECT_FALSE(page->dirty());

  page->slot(4) = Value::Int(42);
  pager.Unpin(page, /*dirtied=*/true);
  EXPECT_EQ(page->pin_count(), 0u);
  EXPECT_TRUE(page->dirty());
  EXPECT_EQ(pager.Read(f, 4), Value::Int(42));

  EXPECT_EQ(pager.FlushAll(), 1u);
  EXPECT_FALSE(page->dirty());
  EXPECT_EQ(pager.stats().pages_flushed, 1u);
}

TEST(PagerTest, SlotWritesMarkPagesDirtyAndFlushCleans) {
  Pager pager;
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < 2 * Pager::kSlotsPerPage; ++s) {
    pager.Write(f, s, Value::Int(1));
  }
  EXPECT_EQ(pager.FlushAll(), 2u);
  EXPECT_EQ(pager.FlushAll(), 0u);  // already clean
  (void)pager.Read(f, 0);           // reads don't dirty
  EXPECT_EQ(pager.FlushAll(), 0u);
}

// ---------------------------------------------------------------------------
// Clock (second chance) victim selection
// ---------------------------------------------------------------------------

TEST(PagerTest, ClockSkipsPinnedPages) {
  Pager pager;
  FileId f = pager.CreateFile();
  ValuePage* p0 = pager.Pin(f, 0);
  EXPECT_EQ(pager.ClockVictim(), nullptr);  // only page is pinned
  pager.Unpin(p0, false);
  // First sweep clears the reference bit, second returns the page.
  EXPECT_EQ(pager.ClockVictim(), p0);
}

TEST(PagerTest, ClockGivesRecentlyReferencedPagesASecondChance) {
  Pager pager;
  FileId f = pager.CreateFile();
  pager.Write(f, 0, Value::Int(1));                      // page 0
  pager.Write(f, Pager::kSlotsPerPage, Value::Int(2));   // page 1
  ValuePage* p0 = pager.Pin(f, 0);
  pager.Unpin(p0, false);
  ValuePage* p1 = pager.Pin(f, 1);
  pager.Unpin(p1, false);

  // Both referenced; a victim exists after reference bits are swept.
  ValuePage* victim = pager.ClockVictim();
  ASSERT_NE(victim, nullptr);
  EXPECT_EQ(victim->pin_count(), 0u);

  // Touch the other page: it is referenced again and survives the next sweep.
  ValuePage* other = victim == p0 ? p1 : p0;
  (void)pager.Read(f, other->index_in_file() * Pager::kSlotsPerPage);
  EXPECT_EQ(pager.ClockVictim(), victim);
}

TEST(PagerTest, ClockVictimNullOnEmptyPager) {
  Pager pager;
  EXPECT_EQ(pager.ClockVictim(), nullptr);
}

// Regression: an all-pinned pool must terminate with nullptr — never spin
// forever clearing reference bits, never hand out a pinned frame.
TEST(PagerTest, ClockVictimNullWhenEveryFrameIsPinned) {
  Pager pager;
  FileId f = pager.CreateFile();
  std::vector<ValuePage*> pins;
  for (uint64_t p = 0; p < 5; ++p) pins.push_back(pager.Pin(f, p));
  for (int attempt = 0; attempt < 3; ++attempt) {
    EXPECT_EQ(pager.ClockVictim(), nullptr) << "attempt " << attempt;
  }
  // Free frames mixed in (from a dropped file) change nothing: they are
  // skipped, pinned frames are skipped, and the sweep still terminates.
  FileId g = pager.CreateFile();
  pager.Write(g, 0, Value::Int(1));
  pager.DropFile(g);
  EXPECT_EQ(pager.ClockVictim(), nullptr);
  for (ValuePage* p : pins) pager.Unpin(p, false);
}

// Regression: with pinned frames interleaved around the clock hand, a full
// sweep (plus the reference-clearing revolution) lands on the sole unpinned
// page — and keeps doing so on every subsequent call, for any hand position.
TEST(PagerTest, ClockVictimSkipsPinnedFramesAcrossFullSweeps) {
  Pager pager;
  FileId f = pager.CreateFile();
  ValuePage* p0 = pager.Pin(f, 0);
  pager.Write(f, 1 * Pager::kSlotsPerPage, Value::Int(1));  // page 1: unpinned
  ValuePage* p2 = pager.Pin(f, 2);
  for (int call = 0; call < 8; ++call) {
    ValuePage* victim = pager.ClockVictim();
    ASSERT_NE(victim, nullptr) << "call " << call;
    EXPECT_EQ(victim->index_in_file(), 1u) << "call " << call;
    EXPECT_EQ(victim->pin_count(), 0u) << "call " << call;
    // Re-reference the page so the next call must sweep past the pins again.
    (void)pager.Read(f, 1 * Pager::kSlotsPerPage);
  }
  pager.Unpin(p0, false);
  pager.Unpin(p2, false);
}

// ---------------------------------------------------------------------------
// Truncation and frame reuse
// ---------------------------------------------------------------------------

TEST(PagerTest, TruncateFreesTailPagesAndClearsSlots) {
  Pager pager;
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < 3 * Pager::kSlotsPerPage; ++s) {
    pager.Write(f, s, Value::Text("v" + std::to_string(s)));
  }
  EXPECT_EQ(pager.resident_pages(), 3u);
  pager.Truncate(f, Pager::kSlotsPerPage / 2);
  EXPECT_EQ(pager.FilePages(f), 1u);
  EXPECT_EQ(pager.FileSize(f), Pager::kSlotsPerPage / 2);
  EXPECT_EQ(pager.resident_pages(), 1u);
  EXPECT_EQ(pager.stats().pages_freed, 2u);
  // Slots past the truncation point on the surviving page are cleared.
  EXPECT_TRUE(pager.Read(f, Pager::kSlotsPerPage / 2).is_null());
  EXPECT_EQ(pager.Read(f, 0), Value::Text("v0"));
}

TEST(PagerTest, FreedFramesAreReusedAcrossFiles) {
  Pager pager;
  FileId a = pager.CreateFile();
  for (uint64_t s = 0; s < 4 * Pager::kSlotsPerPage; ++s) {
    pager.Write(a, s, Value::Int(1));
  }
  uint64_t allocated = pager.stats().pages_allocated;
  pager.DropFile(a);
  EXPECT_EQ(pager.resident_pages(), 0u);

  FileId b = pager.CreateFile();
  for (uint64_t s = 0; s < 4 * Pager::kSlotsPerPage; ++s) {
    pager.Write(b, s, Value::Int(2));
  }
  // The new file recycled the freed frames; reuse still counts as allocation
  // but no new frames were created beyond the recycled ones.
  EXPECT_EQ(pager.stats().pages_allocated, allocated + 4);
  EXPECT_EQ(pager.resident_pages(), 4u);
  // Recycled frames carry no stale data.
  EXPECT_EQ(pager.Read(b, 0), Value::Int(2));
}

// ---------------------------------------------------------------------------
// A shared pager pools pages across storages (the Database arrangement)
// ---------------------------------------------------------------------------

TEST(PagerTest, SharedPagerPoolsAcrossStorageModels) {
  Pager pager;
  auto hybrid = CreateStorage(StorageModel::kHybrid, 2, &pager);
  auto row = CreateStorage(StorageModel::kRow, 2, &pager);
  ASSERT_TRUE(hybrid->AppendRow({Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(row->AppendRow({Value::Int(3), Value::Int(4)}).ok());
  EXPECT_EQ(&hybrid->pager(), &pager);
  EXPECT_EQ(&row->pager(), &pager);
  EXPECT_EQ(pager.resident_pages(), 2u);  // one page each, no aliasing
  EXPECT_EQ(hybrid->Get(0, 0).value(), Value::Int(1));
  EXPECT_EQ(row->Get(0, 0).value(), Value::Int(3));

  // Destroying a storage returns its pages to the shared pool.
  row.reset();
  EXPECT_EQ(pager.resident_pages(), 1u);
}

// ---------------------------------------------------------------------------
// The paper's §2.2 headline claim, measured through real pages:
// HybridStore::AddColumn dirties O(rows/256) pages, RowStore O(all).
// ---------------------------------------------------------------------------

size_t PagesDirtiedByAddColumn(TableStorage& s, size_t rows) {
  s.pager().set_accounting_enabled(false);
  for (size_t i = 0; i < rows; ++i) {
    Row r{Value::Int(static_cast<int64_t>(i)), Value::Int(1), Value::Int(2),
          Value::Int(3)};
    EXPECT_TRUE(s.AppendRow(r).ok());
  }
  s.pager().set_accounting_enabled(true);
  s.pager().BeginEpoch();
  EXPECT_TRUE(s.AddColumn(Value::Int(0)).ok());
  return s.pager().EpochPagesWritten();
}

TEST(PagerRegressionTest, HybridAddColumnDirtiesExactlyRowsOver256Pages) {
  constexpr size_t kRows = 20000;
  auto s = CreateStorage(StorageModel::kHybrid, 4);
  size_t dirtied = PagesDirtiedByAddColumn(*s, kRows);
  // The fresh single-attribute group is exactly ceil(rows / 256) pages and
  // nothing else is written.
  constexpr size_t kExpected =
      (kRows + Pager::kSlotsPerPage - 1) / Pager::kSlotsPerPage;
  EXPECT_EQ(dirtied, kExpected);
}

TEST(PagerRegressionTest, RowStoreAddColumnDirtiesTheWholeHeap) {
  constexpr size_t kRows = 20000;
  auto s = CreateStorage(StorageModel::kRow, 4);
  size_t dirtied = PagesDirtiedByAddColumn(*s, kRows);
  // The restride rewrites every tuple: all pages of the new 5-wide layout.
  constexpr size_t kWholeHeap =
      (kRows * 5 + Pager::kSlotsPerPage - 1) / Pager::kSlotsPerPage;
  EXPECT_GE(dirtied, kWholeHeap);
  // And the asymptotic gap vs hybrid is the column count (5x here).
  auto h = CreateStorage(StorageModel::kHybrid, 4);
  EXPECT_GE(dirtied, PagesDirtiedByAddColumn(*h, kRows) * 4);
}

}  // namespace
}  // namespace dataspread
