// PageCursor (storage/page_cursor.h): the pin-once-per-page hot path. The
// cursor must be semantically identical to the slot-granular Read/Write/Take
// — same values, same file growth, same distinct-page accounting — while
// holding at most one pin, surviving eviction boundaries under tiny pools,
// and classifying its traversals as scans. GetRows (the bulk path every
// storage model routes through cursors) is checked against the GetRow loop
// for all four models.
#include <gtest/gtest.h>

#include <random>
#include <string>
#include <utility>
#include <vector>

#include "storage/page_cursor.h"
#include "storage/pager.h"
#include "storage/table_storage.h"

namespace dataspread {
namespace {

using storage::FileId;
using storage::PageCursor;
using storage::Pager;
using storage::PagerConfig;

constexpr uint64_t kSlots = Pager::kSlotsPerPage;

PagerConfig Bounded(size_t cap) {
  PagerConfig config;
  config.max_resident_pages = cap;
  return config;
}

Value ProbeValue(uint64_t seed) {
  switch (seed % 5) {
    case 0:
      return Value::Int(static_cast<int64_t>(seed) * 17 - 3);
    case 1:
      return Value::Real(static_cast<double>(seed) / 7.0);
    case 2:
      return Value::Text("t" + std::to_string(seed));
    case 3:
      return Value::Bool(seed % 2 == 1);
    default:
      return Value::Null();
  }
}

// ---------------------------------------------------------------------------
// Read/Write/Take semantics match the slot APIs
// ---------------------------------------------------------------------------

TEST(PageCursorTest, WritesReadBackThroughBothPaths) {
  Pager pager;
  FileId f = pager.CreateFile();
  constexpr uint64_t kCount = 3 * kSlots + 40;
  {
    PageCursor cursor(pager, f);
    for (uint64_t s = 0; s < kCount; ++s) cursor.Write(s, ProbeValue(s));
  }
  EXPECT_EQ(pager.FileSize(f), kCount);
  EXPECT_EQ(pager.FilePages(f), 4u);
  // Cursor writes are visible to the slot API...
  for (uint64_t s = 0; s < kCount; ++s) {
    ASSERT_EQ(pager.Read(f, s), ProbeValue(s)) << "slot " << s;
  }
  // ...and slot writes are visible to a fresh cursor.
  pager.Write(f, 5, Value::Text("updated"));
  PageCursor cursor(pager, f);
  EXPECT_EQ(cursor.Read(5), Value::Text("updated"));
  EXPECT_EQ(cursor.Read(kCount - 1), ProbeValue(kCount - 1));
}

TEST(PageCursorTest, TakeMovesValueOutAndDirtiesLikeTheSlotApi) {
  Pager pager;
  FileId f = pager.CreateFile();
  pager.Write(f, kSlots + 3, Value::Text("payload"));
  // Only page 1 was written (page 0 is allocated but clean).
  ASSERT_EQ(pager.FlushAll(), 1u);
  PageCursor cursor(pager, f);
  EXPECT_EQ(cursor.Take(kSlots + 3), Value::Text("payload"));
  EXPECT_TRUE(cursor.Read(kSlots + 3).is_null());
  cursor.Release();
  // The take dirtied the page, so the checkpoint rewrites exactly it.
  EXPECT_EQ(pager.FlushAll(), 1u);
}

TEST(PageCursorTest, HoldsExactlyOnePinAndReleasesIt) {
  Pager pager;
  FileId f = pager.CreateFile();
  for (uint64_t p = 0; p < 4; ++p) pager.Write(f, p * kSlots, Value::Int(1));
  {
    PageCursor cursor(pager, f);
    EXPECT_EQ(pager.pinned_pages(), 0u);  // not started: no pin yet
    (void)cursor.Read(0);
    EXPECT_EQ(pager.pinned_pages(), 1u);
    (void)cursor.Read(2 * kSlots);  // page change: old pin released
    EXPECT_EQ(pager.pinned_pages(), 1u);
    cursor.Release();
    EXPECT_EQ(pager.pinned_pages(), 0u);
    (void)cursor.Read(3 * kSlots);  // usable after Release
    EXPECT_EQ(pager.pinned_pages(), 1u);
  }  // destructor releases the last pin
  EXPECT_EQ(pager.pinned_pages(), 0u);
}

TEST(PageCursorTest, MoveTransfersThePin) {
  Pager pager;
  FileId f = pager.CreateFile();
  pager.Write(f, 0, Value::Int(7));
  PageCursor a(pager, f);
  EXPECT_EQ(a.Read(0), Value::Int(7));
  EXPECT_EQ(pager.pinned_pages(), 1u);
  PageCursor b(std::move(a));
  EXPECT_EQ(pager.pinned_pages(), 1u);  // exactly one pin moved, not two
  EXPECT_EQ(b.Read(0), Value::Int(7));
  b.Release();
  EXPECT_EQ(pager.pinned_pages(), 0u);
}

// ---------------------------------------------------------------------------
// Accounting: distinct pages once per page, slot counters exact
// ---------------------------------------------------------------------------

TEST(PageCursorTest, EpochCountsDistinctPagesOncePerPageVisit) {
  Pager pager;
  FileId f = pager.CreateFile();
  pager.BeginEpoch();
  {
    PageCursor cursor(pager, f);
    for (uint64_t s = 0; s < 3 * kSlots; ++s) {
      cursor.Write(s, Value::Int(static_cast<int64_t>(s)));
    }
  }
  EXPECT_EQ(pager.EpochPagesWritten(), 3u);
  EXPECT_EQ(pager.EpochPagesRead(), 0u);
  EXPECT_EQ(pager.stats().slot_writes, 3 * kSlots);

  pager.BeginEpoch();
  uint64_t reads_before = pager.stats().slot_reads;
  {
    PageCursor cursor(pager, f);
    for (uint64_t s = 0; s < 2 * kSlots; ++s) (void)cursor.Read(s);
  }
  EXPECT_EQ(pager.EpochPagesRead(), 2u);
  EXPECT_EQ(pager.EpochPagesWritten(), 0u);
  EXPECT_EQ(pager.stats().slot_reads - reads_before, 2 * kSlots);
}

TEST(PageCursorTest, WriteRangeAndFillMatchSlotWritesExactly) {
  Pager pager;
  FileId f = pager.CreateFile();
  std::vector<Value> values;
  constexpr uint64_t kCount = 2 * kSlots + 17;
  values.reserve(kCount);
  for (uint64_t s = 0; s < kCount; ++s) values.push_back(ProbeValue(s + 9));

  pager.BeginEpoch();
  PageCursor cursor(pager, f);
  cursor.WriteRange(10, values.data(), kCount);
  EXPECT_EQ(pager.FileSize(f), 10 + kCount);
  EXPECT_EQ(pager.EpochPagesWritten(), 3u);  // slots 10 .. 2*256+27
  EXPECT_EQ(pager.stats().slot_writes, kCount);
  for (uint64_t s = 0; s < kCount; ++s) {
    ASSERT_EQ(pager.Read(f, 10 + s), values[s]) << "slot " << s;
  }

  cursor.Fill(10 + kCount, kSlots, Value::Text("fill"));
  EXPECT_EQ(pager.FileSize(f), 10 + kCount + kSlots);
  EXPECT_EQ(pager.Read(f, 10 + kCount + kSlots - 1), Value::Text("fill"));
  EXPECT_TRUE(pager.Read(f, 9).is_null());  // slots below the range untouched
}

TEST(PagerTest, PagerWriteRangeMatchesSlotWrites) {
  Pager pager;
  FileId f = pager.CreateFile();
  std::vector<Value> values;
  constexpr uint64_t kCount = kSlots + 31;
  for (uint64_t s = 0; s < kCount; ++s) values.push_back(ProbeValue(s));
  pager.BeginEpoch();
  pager.WriteRange(f, 0, values.data(), kCount);
  EXPECT_EQ(pager.FileSize(f), kCount);
  EXPECT_EQ(pager.EpochPagesWritten(), 2u);
  EXPECT_EQ(pager.stats().slot_writes, kCount);
  for (uint64_t s = 0; s < kCount; ++s) {
    ASSERT_EQ(pager.Read(f, s), values[s]) << "slot " << s;
  }
}

// ---------------------------------------------------------------------------
// Cursors under a bounded pool
// ---------------------------------------------------------------------------

TEST(PageCursorTest, StreamsCorrectlyThroughATinyPool) {
  Pager pager(Bounded(3));
  FileId f = pager.CreateFile();
  constexpr uint64_t kCount = 12 * kSlots;
  {
    PageCursor cursor(pager, f);
    for (uint64_t s = 0; s < kCount; ++s) cursor.Write(s, ProbeValue(s));
  }
  EXPECT_LE(pager.resident_pages(), 3u);
  EXPECT_GT(pager.stats().evictions, 0u);
  // Forward scan, then strided jumps, then backward scan — all faulting
  // through the 3-frame pool — must read exactly what was written.
  {
    PageCursor cursor(pager, f);
    for (uint64_t s = 0; s < kCount; ++s) {
      ASSERT_EQ(cursor.Read(s), ProbeValue(s)) << "slot " << s;
      ASSERT_LE(pager.resident_pages(), 3u);
    }
    for (uint64_t s = 0; s < kCount; s += 700) {
      ASSERT_EQ(cursor.Read(s), ProbeValue(s)) << "slot " << s;
    }
    for (uint64_t s = kCount; s-- > 0;) {
      ASSERT_EQ(cursor.Read(s), ProbeValue(s)) << "slot " << s;
    }
  }
  EXPECT_GT(pager.stats().faults, 0u);
}

TEST(PageCursorTest, TwoCursorRestrideSurvivesEvictionPressure) {
  // The RowStore::AddColumn pattern: a source cursor taking values while a
  // destination cursor rewrites them at a wider stride, same file, under a
  // pool smaller than the data.
  Pager pager(Bounded(4));
  FileId f = pager.CreateFile();
  constexpr uint64_t kRows = 5 * kSlots;  // 5 pages at width 1
  for (uint64_t r = 0; r < kRows; ++r) {
    pager.Write(f, r, Value::Int(static_cast<int64_t>(r)));
  }
  {
    PageCursor src(pager, f);
    PageCursor dst(pager, f);
    for (uint64_t r = kRows; r-- > 0;) {
      dst.Write(r * 2 + 1, Value::Int(-1));
      dst.Write(r * 2, src.Take(r));
    }
  }
  EXPECT_LE(pager.resident_pages(), 4u);
  for (uint64_t r = 0; r < kRows; ++r) {
    ASSERT_EQ(pager.Read(f, r * 2), Value::Int(static_cast<int64_t>(r)));
    ASSERT_EQ(pager.Read(f, r * 2 + 1), Value::Int(-1));
  }
}

// ---------------------------------------------------------------------------
// GetRows (the bulk scan path) equals the GetRow loop for every model
// ---------------------------------------------------------------------------

class GetRowsModelTest : public ::testing::TestWithParam<StorageModel> {};

TEST_P(GetRowsModelTest, MatchesGetRowLoopDenseAndAfterSchemaChanges) {
  for (size_t cap : {size_t{0}, size_t{4}}) {
    auto s = CreateStorage(GetParam(), 5, nullptr, Bounded(cap));
    std::mt19937 rng(31);
    constexpr size_t kRows = 700;  // ~14 pages of tuples behind 4 frames
    Row r(5);
    for (size_t i = 0; i < kRows; ++i) {
      for (size_t c = 0; c < 5; ++c) {
        r[c] = (rng() % 6 == 0) ? Value::Null()
                                : ProbeValue(rng() % 1000);
      }
      ASSERT_TRUE(s->AppendRow(r).ok());
    }
    // Schema churn so hybrid goes multi-group and rcv gets a filled column.
    ASSERT_TRUE(s->AddColumn(Value::Int(42)).ok());
    ASSERT_TRUE(s->DropColumn(1).ok());

    std::vector<Row> bulk;
    ASSERT_TRUE(s->GetRows(0, kRows, &bulk).ok());
    ASSERT_EQ(bulk.size(), kRows);
    for (size_t i = 0; i < kRows; ++i) {
      Row expect = s->GetRow(i).ValueOrDie();
      ASSERT_EQ(bulk[i], expect) << "row " << i << " cap " << cap;
    }
    // The zero-materialization visitor sees the same tuples in order.
    size_t visited = 0;
    size_t cols = s->num_columns();
    ASSERT_TRUE(s->VisitRows(0, kRows,
                             [&](size_t row, const Value* values) {
                               ASSERT_EQ(row, visited);
                               for (size_t c = 0; c < cols; ++c) {
                                 ASSERT_EQ(values[c], bulk[row][c])
                                     << "row " << row << " col " << c
                                     << " cap " << cap;
                               }
                               ++visited;
                             })
                    .ok());
    EXPECT_EQ(visited, kRows);
    EXPECT_FALSE(s->VisitRows(kRows, 1, [](size_t, const Value*) {}).ok());
    // A mid-table window with a non-zero start.
    std::vector<Row> window;
    ASSERT_TRUE(s->GetRows(kRows / 3, 10, &window).ok());
    ASSERT_EQ(window.size(), 10u);
    for (size_t i = 0; i < 10; ++i) {
      ASSERT_EQ(window[i], s->GetRow(kRows / 3 + i).ValueOrDie());
    }
    // Bounds are enforced.
    std::vector<Row> none;
    EXPECT_FALSE(s->GetRows(kRows - 5, 6, &none).ok());
    EXPECT_FALSE(s->GetRows(kRows, 1, &none).ok());
    EXPECT_TRUE(s->GetRows(kRows, 0, &none).ok());  // empty range is fine
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, GetRowsModelTest,
                         ::testing::Values(StorageModel::kRow,
                                           StorageModel::kColumn,
                                           StorageModel::kRcv,
                                           StorageModel::kHybrid));

}  // namespace
}  // namespace dataspread
