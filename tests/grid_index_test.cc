#include <gtest/gtest.h>

#include <set>

#include "index/grid_index.h"

namespace dataspread {
namespace {

TEST(GridIndexTest, TileMath) {
  EXPECT_EQ(GridIndex::TileOf(0), 0);
  EXPECT_EQ(GridIndex::TileOf(31), 0);
  EXPECT_EQ(GridIndex::TileOf(32), 1);
  EXPECT_EQ(GridIndex::OffsetOf(33), 1);
}

TEST(GridIndexTest, InsertFindErase) {
  GridIndex idx;
  EXPECT_EQ(idx.Find(1, 2), GridIndex::kNoSlot);
  ASSERT_TRUE(idx.Insert(1, 2, 7).ok());
  EXPECT_EQ(idx.Find(1, 2), 7u);
  EXPECT_FALSE(idx.Insert(1, 2, 9).ok());  // duplicate
  EXPECT_TRUE(idx.Erase(1, 2));
  EXPECT_FALSE(idx.Erase(1, 2));
  EXPECT_EQ(idx.Find(1, 2), GridIndex::kNoSlot);
}

TEST(GridIndexTest, VisitRectSmallRectProbes) {
  GridIndex idx;
  // Register tiles along a diagonal.
  for (int64_t i = 0; i < 100; ++i) {
    ASSERT_TRUE(idx.Insert(i, i, static_cast<uint32_t>(i)).ok());
  }
  // Cell rect covering tiles (2,2)..(4,4).
  std::set<int64_t> rows;
  idx.VisitRect(2 * 32, 2 * 32, 4 * 32 + 31, 4 * 32 + 31,
                [&](int64_t tr, int64_t tc, uint32_t slot) {
                  EXPECT_EQ(tr, tc);
                  EXPECT_EQ(slot, static_cast<uint32_t>(tr));
                  rows.insert(tr);
                });
  EXPECT_EQ(rows, (std::set<int64_t>{2, 3, 4}));
}

TEST(GridIndexTest, VisitRectHugeRectScansDirectory) {
  GridIndex idx;
  ASSERT_TRUE(idx.Insert(0, 0, 1).ok());
  ASSERT_TRUE(idx.Insert(1000, 1000, 2).ok());
  int count = 0;
  // Rect spanning billions of candidate tiles: must fall back to scanning.
  idx.VisitRect(0, 0, int64_t{1} << 40, int64_t{1} << 40,
                [&](int64_t, int64_t, uint32_t) { ++count; });
  EXPECT_EQ(count, 2);
}

TEST(GridIndexTest, VisitRectEmptyAndInverted) {
  GridIndex idx;
  ASSERT_TRUE(idx.Insert(0, 0, 1).ok());
  int count = 0;
  idx.VisitRect(10, 10, 5, 5, [&](int64_t, int64_t, uint32_t) { ++count; });
  EXPECT_EQ(count, 0);
}

TEST(GridIndexTest, VisitAll) {
  GridIndex idx;
  for (int64_t i = 0; i < 10; ++i) {
    ASSERT_TRUE(idx.Insert(i, 2 * i, static_cast<uint32_t>(i)).ok());
  }
  size_t count = 0;
  idx.VisitAll([&](int64_t tr, int64_t tc, uint32_t) {
    EXPECT_EQ(tc, 2 * tr);
    ++count;
  });
  EXPECT_EQ(count, 10u);
  idx.Clear();
  EXPECT_EQ(idx.size(), 0u);
}

}  // namespace
}  // namespace dataspread
