// Concurrency: the thread-safe pager, group commit, and the double-open
// guard (DESIGN.md §7 "Transactions & concurrency").
//
// ci/check.sh runs this suite a second time under ThreadSanitizer — the
// assertions here prove *values* stay consistent; TSan proves the latching
// underneath is race-free. Layers under test:
//   - N reader cursors + 1 writer thread over a 64-frame bounded pool, so
//     faults, evictions, and write-backs interleave with latch-free slot
//     reads; a single-threaded shadow replays the writer's ops and the
//     final states must match slot for slot,
//   - group commit: concurrent committers on one durable database, every
//     successful statement individually durable across a crash,
//   - multi-statement transactions: readers interleave with a writer's
//     BEGIN..COMMIT / ROLLBACK brackets and only ever observe statement
//     boundaries — a ROLLBACK's undo retracts its batch atomically,
//   - the advisory pair lock: a second open fails fast with AlreadyExists
//     while the first database lives, and succeeds after it dies.
#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "exec/morsel.h"
#include "storage/page_cursor.h"
#include "storage/pager.h"

namespace dataspread {
namespace {

using storage::FileId;
using storage::PageCursor;
using storage::Pager;
using storage::PagerConfig;

constexpr uint64_t kSlots = Pager::kSlotsPerPage;

// ---------------------------------------------------------------------------
// N readers + 1 writer over a bounded pool
// ---------------------------------------------------------------------------

TEST(ConcurrentPagerTest, ReadersAndOneWriterOverABoundedPool) {
  // Every slot only ever holds Value::Int(slot * kStride + version), so a
  // reader can validate any value it observes without knowing *when* it was
  // written — the invariant concurrent reads must preserve.
  constexpr uint64_t kPages = 96;  // 1.5x the pool: every thread faults
  constexpr uint64_t kSlotCount = kPages * kSlots;
  constexpr int64_t kStride = 1 << 20;
  constexpr int kReaders = 4;
  constexpr int kWriterOps = 20000;
  constexpr int kReadsPerReader = 20000;

  PagerConfig config;
  config.max_resident_pages = 64;
  Pager pager(config);
  FileId f = pager.CreateFile();
  {
    PageCursor init(pager, f);
    for (uint64_t s = 0; s < kSlotCount; ++s) {
      init.Write(s, Value::Int(static_cast<int64_t>(s) * kStride));
    }
  }

  // The writer's op sequence, fixed up front so a single-threaded shadow
  // can replay it exactly.
  std::vector<std::pair<uint64_t, int64_t>> writes;
  writes.reserve(kWriterOps);
  std::mt19937_64 wrng(1234);
  for (int i = 0; i < kWriterOps; ++i) {
    writes.emplace_back(wrng() % kSlotCount, 1 + (i % (kStride - 1)));
  }

  std::atomic<bool> failed{false};
  std::thread writer([&] {
    PageCursor cursor(pager, f);
    for (const auto& [slot, version] : writes) {
      cursor.Write(slot, Value::Int(static_cast<int64_t>(slot) * kStride +
                                    version));
    }
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < kReaders; ++r) {
    readers.emplace_back([&, r] {
      std::mt19937_64 rng(77 + r);
      PageCursor cursor(pager, f);
      for (int i = 0; i < kReadsPerReader && !failed.load(); ++i) {
        uint64_t slot = rng() % kSlotCount;
        Value v = cursor.Read(slot);  // copy out from under the data latch
        if (v.type() != DataType::kInt ||
            v.int_value() / kStride != static_cast<int64_t>(slot)) {
          failed.store(true);
        }
        if (i % 64 == 0) cursor.Release();  // exercise unpinned re-entry
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_FALSE(failed.load()) << "a reader observed a value no write produced";

  // Single-threaded shadow replay: the writer's final state is exact.
  Pager shadow;
  FileId sf = shadow.CreateFile();
  for (uint64_t s = 0; s < kSlotCount; ++s) {
    shadow.Write(sf, s, Value::Int(static_cast<int64_t>(s) * kStride));
  }
  for (const auto& [slot, version] : writes) {
    shadow.Write(sf, slot,
                 Value::Int(static_cast<int64_t>(slot) * kStride + version));
  }
  ASSERT_EQ(pager.FileSize(f), shadow.FileSize(sf));
  for (uint64_t s = 0; s < kSlotCount; ++s) {
    ASSERT_EQ(pager.Read(f, s), shadow.Read(sf, s)) << "slot " << s;
  }
  EXPECT_GT(pager.stats().evictions, 0u);  // the pool was genuinely bounded
}

// ---------------------------------------------------------------------------
// Group commit: concurrent committers, each statement durable
// ---------------------------------------------------------------------------

struct DurableBase {
  explicit DurableBase(const std::string& tag) {
    base = ::testing::TempDir() + "ds_conc_" + tag;
    Remove();
  }
  ~DurableBase() { Remove(); }
  void Remove() {
    std::remove((base + ".wal").c_str());
    std::remove((base + ".pages").c_str());
    std::remove((base + ".wal.lock").c_str());
  }
  std::string base;
};

TEST(GroupCommitTest, ConcurrentCommittersAreEachDurableAcrossACrash) {
  constexpr int kThreads = 4;
  constexpr int kPerThread = 25;
  DurableBase files("group_commit");
  {
    DatabaseOptions options;
    options.sync_on_commit = true;
    options.group_commit = true;
    auto db = Database::Open(files.base, options);
    ASSERT_TRUE(
        db->Execute("CREATE TABLE t (a INT, b INT)").ok());
    std::vector<std::thread> committers;
    std::atomic<int> errors{0};
    for (int th = 0; th < kThreads; ++th) {
      committers.emplace_back([&, th] {
        for (int i = 0; i < kPerThread; ++i) {
          int v = th * kPerThread + i;
          auto r = db->Execute("INSERT INTO t VALUES (" + std::to_string(v) +
                               ", " + std::to_string(v * 3) + ")");
          if (!r.ok()) errors.fetch_add(1);
        }
      });
    }
    for (std::thread& t : committers) t.join();
    EXPECT_EQ(errors.load(), 0);
    db->pager().CrashForTesting();  // no destructor checkpoint: the WAL must
                                    // already hold every synced commit
  }
  auto db = Database::Open(files.base);
  auto r = db->Execute("SELECT COUNT(*), SUM(a), SUM(b) FROM t");
  ASSERT_TRUE(r.ok());
  const int n = kThreads * kPerThread;
  const int64_t sum = static_cast<int64_t>(n) * (n - 1) / 2;
  EXPECT_EQ(r.value().rows[0][0], Value::Int(n));
  EXPECT_EQ(r.value().rows[0][1], Value::Int(sum));
  EXPECT_EQ(r.value().rows[0][2], Value::Int(sum * 3));
}

// ---------------------------------------------------------------------------
// Multi-statement transactions beside readers (DESIGN.md §7)
// ---------------------------------------------------------------------------

// One writer drives BEGIN..COMMIT / ROLLBACK transactions of kBatch INSERTs
// each, re-issuing a rolled-back batch until it commits, so the table always
// holds a prefix 0..n-1 of the sequence (a, 3a): a partially applied open
// transaction extends the prefix one statement at a time, and a ROLLBACK
// retracts it atomically (the whole undo runs inside one statement).
// Statements serialize, so every concurrent SELECT must see such a prefix —
// COUNT == n forces SUM(a) == n(n-1)/2 and SUM(b) == 3·SUM(a). TSan over
// this test proves the undo journal and the transaction state machine are
// race-free beside readers.
TEST(TxnConcurrencyTest, ReadersBesideAWriterWithRandomRollbacks) {
  constexpr int kTxns = 40;
  constexpr int kBatch = 5;
  DurableBase files("txn_rollback");
  DatabaseOptions options;
  options.sync_on_commit = true;
  options.group_commit = true;
  auto db = Database::Open(files.base, options);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT, b INT)").ok());

  std::atomic<bool> done{false};
  std::atomic<int> writer_errors{0};
  std::atomic<int> reader_errors{0};
  int committed = 0;
  std::thread writer([&] {
    std::mt19937 rng(4242);
    auto run = [&](const std::string& sql) {
      if (!db->Execute(sql).ok()) writer_errors.fetch_add(1);
    };
    for (int txn = 0; txn < kTxns; ++txn) {
      bool doomed = rng() % 3 == 0;
      run("BEGIN");
      for (int i = 0; i < kBatch; ++i) {
        int v = committed + i;
        run("INSERT INTO t VALUES (" + std::to_string(v) + ", " +
            std::to_string(3 * v) + ")");
      }
      if (doomed) {
        run("ROLLBACK");  // the batch vanishes; the next txn re-inserts it
      } else {
        run("COMMIT");
        committed += kBatch;
      }
    }
    done.store(true);
  });
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&] {
      while (!done.load()) {
        auto res = db->Execute("SELECT COUNT(*), SUM(a), SUM(b) FROM t");
        if (!res.ok()) {
          reader_errors.fetch_add(1);
          continue;
        }
        int64_t n = res.value().rows[0][0].int_value();
        if (n > 0) {
          int64_t sum = n * (n - 1) / 2;
          if (res.value().rows[0][1] != Value::Int(sum) ||
              res.value().rows[0][2] != Value::Int(3 * sum)) {
            reader_errors.fetch_add(1);
          }
        }
      }
    });
  }
  writer.join();
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(writer_errors.load(), 0);
  EXPECT_EQ(reader_errors.load(), 0);
  ASSERT_GT(committed, 0);

  auto fin = db->Execute("SELECT COUNT(*), SUM(a) FROM t");
  ASSERT_TRUE(fin.ok());
  EXPECT_EQ(fin.value().rows[0][0], Value::Int(committed));
  EXPECT_EQ(fin.value().rows[0][1],
            Value::Int(static_cast<int64_t>(committed) * (committed - 1) / 2));
}

// ---------------------------------------------------------------------------
// Partitioned write latches: many writers at once (DESIGN.md §7)
// ---------------------------------------------------------------------------

// The full multi-writer matrix in one test: four writers on disjoint tables
// (the per-table latches never serialize them against each other), two
// writers contending for the same pair of tables in opposite orders — the
// classic deadlock, resolved by wait-die aborting the younger with a
// retryable serialization conflict — plus readers polling every table with
// morsel-parallel aggregate fan-out underneath. Disjoint writer t appends
// whole batches of consecutive values, so COUNT == n forces SUM(a) ==
// n(n-1)/2 and SUM(b) == 3·SUM(a); the contended tables only ever grow by
// committed rows of (1, 3), so SUM(a) == COUNT and SUM(b) == 3·COUNT at
// every observation. TSan over this test proves the latch table, the
// per-session undo journals, and the interleaved commit brackets race-free.
TEST(MultiWriterTest, DisjointAndContendingWritersBesideReaders) {
  constexpr int kDisjoint = 4;
  constexpr int kTxns = 30;
  constexpr int kBatch = 4;
  DurableBase files("multi_writer");
  DatabaseOptions options;
  options.sync_on_commit = true;
  options.group_commit = true;
  options.exec = ExecOptions{8, false, 4, 16};  // 4 workers, tiny morsels
  auto db = Database::Open(files.base, options);
  for (int t = 0; t < kDisjoint; ++t) {
    ASSERT_TRUE(
        db->Execute("CREATE TABLE d" + std::to_string(t) + " (a INT, b INT)")
            .ok());
  }
  ASSERT_TRUE(db->Execute("CREATE TABLE c1 (a INT, b INT)").ok());
  ASSERT_TRUE(db->Execute("CREATE TABLE c2 (a INT, b INT)").ok());

  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::atomic<int> reader_errors{0};
  std::atomic<int> contended_commits{0};
  std::atomic<int> victim_retries{0};
  int disjoint_committed[kDisjoint] = {};
  std::vector<std::unique_ptr<Session>> sessions;
  for (int i = 0; i < kDisjoint + 2; ++i) {
    sessions.push_back(db->CreateSession());
  }

  std::vector<std::thread> writers;
  for (int t = 0; t < kDisjoint; ++t) {
    writers.emplace_back([&, t] {
      Session* s = sessions[t].get();
      std::string table = "d" + std::to_string(t);
      std::mt19937 rng(1000 + t);
      auto run = [&](const std::string& sql) {
        if (!s->Execute(sql).ok()) errors.fetch_add(1);
      };
      int committed = 0;
      for (int txn = 0; txn < kTxns; ++txn) {
        bool doomed = rng() % 3 == 0;
        run("BEGIN");
        for (int i = 0; i < kBatch; ++i) {
          int v = committed + i;
          run("INSERT INTO " + table + " VALUES (" + std::to_string(v) +
              ", " + std::to_string(3 * v) + ")");
        }
        if (doomed) {
          run("ROLLBACK");  // the batch vanishes; the next txn re-inserts it
        } else {
          run("COMMIT");
          committed += kBatch;
        }
      }
      disjoint_committed[t] = committed;
    });
  }
  for (int w = 0; w < 2; ++w) {
    writers.emplace_back([&, w] {
      Session* s = sessions[kDisjoint + w].get();
      const std::string first = w == 0 ? "c1" : "c2";
      const std::string second = w == 0 ? "c2" : "c1";
      for (int txn = 0; txn < kTxns; ++txn) {
        for (;;) {  // a wait-die victim rolls back and re-runs its txn
          bool conflicted = false;
          auto exec = [&](const std::string& sql) {
            auto r = s->Execute(sql);
            if (r.ok()) return true;
            if (r.status().code() == StatusCode::kSerializationConflict) {
              conflicted = true;
            } else {
              errors.fetch_add(1);
            }
            return false;
          };
          bool ok = exec("BEGIN") &&
                    exec("INSERT INTO " + first + " VALUES (1, 3)") &&
                    exec("INSERT INTO " + second + " VALUES (1, 3)") &&
                    exec("COMMIT");
          if (ok) {
            contended_commits.fetch_add(1);
            break;
          }
          // Abort acknowledgement: ROLLBACK clears the poisoned state
          // whether the victim's transaction was already rolled back by
          // wait-die or a statement failed for any other reason.
          if (!s->Execute("ROLLBACK").ok()) errors.fetch_add(1);
          if (!conflicted) break;  // a real error: don't loop on it
          victim_retries.fetch_add(1);
        }
      }
    });
  }
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; ++r) {
    readers.emplace_back([&, r] {
      while (!done.load()) {
        // Disjoint tables hold a committed prefix of 0..n-1.
        std::string dt = "d" + std::to_string(r * 2);  // d0 / d2
        auto res = db->Execute("SELECT COUNT(*), SUM(a), SUM(b) FROM " + dt);
        if (!res.ok()) {
          reader_errors.fetch_add(1);
          continue;
        }
        int64_t n = res.value().rows[0][0].int_value();
        if (n > 0) {
          int64_t sum = n * (n - 1) / 2;
          if (res.value().rows[0][1] != Value::Int(sum) ||
              res.value().rows[0][2] != Value::Int(3 * sum)) {
            reader_errors.fetch_add(1);
          }
        }
        // Contended tables hold only whole committed (1, 3) rows.
        std::string ct = r == 0 ? "c1" : "c2";
        res = db->Execute("SELECT COUNT(*), SUM(a), SUM(b) FROM " + ct);
        if (!res.ok()) {
          reader_errors.fetch_add(1);
          continue;
        }
        n = res.value().rows[0][0].int_value();
        if (n > 0 && (res.value().rows[0][1] != Value::Int(n) ||
                      res.value().rows[0][2] != Value::Int(3 * n))) {
          reader_errors.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : writers) t.join();
  done.store(true);
  for (std::thread& t : readers) t.join();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(reader_errors.load(), 0);
  EXPECT_EQ(contended_commits.load(), 2 * kTxns);

  for (int t = 0; t < kDisjoint; ++t) {
    ASSERT_GT(disjoint_committed[t], 0);
    auto fin = db->Execute("SELECT COUNT(*), SUM(a) FROM d" +
                           std::to_string(t));
    ASSERT_TRUE(fin.ok());
    int64_t n = disjoint_committed[t];
    EXPECT_EQ(fin.value().rows[0][0], Value::Int(n));
    EXPECT_EQ(fin.value().rows[0][1], Value::Int(n * (n - 1) / 2));
  }
  for (const char* ct : {"c1", "c2"}) {
    // A morsel-parallel grouped scan over the contended survivors.
    auto fin = db->Execute(std::string("SELECT a, COUNT(*), SUM(b) FROM ") +
                           ct + " GROUP BY a");
    ASSERT_TRUE(fin.ok());
    ASSERT_EQ(fin.value().num_rows(), 1u) << ct;
    EXPECT_EQ(fin.value().rows[0][1], Value::Int(2 * kTxns)) << ct;
    EXPECT_EQ(fin.value().rows[0][2], Value::Int(3 * 2 * kTxns)) << ct;
  }
}

// ---------------------------------------------------------------------------
// Morsel-parallel scans beside a writer (DESIGN.md §6b)
// ---------------------------------------------------------------------------

// SQL level: every SELECT fans out over 4 morsel workers while one DML
// writer commits with group commit on — the workers overlap each other, the
// previous statement's leader fsync (which runs outside the statement
// mutex), and the pager's eviction machinery. Statements serialize, so each
// read must observe a committed prefix of the single appender: COUNT == n
// implies SUM(a) == n(n-1)/2 and SUM(b) == 3·SUM(a), and n never decreases.
TEST(MorselScanTest, ParallelScanBesideAWriterObservesCommittedPrefixes) {
  constexpr int kRows = 300;
  DurableBase files("morsel_scan");
  DatabaseOptions options;
  options.sync_on_commit = true;
  options.group_commit = true;
  options.exec = ExecOptions{8, false, 4, 16};  // 4 workers, tiny morsels
  auto db = Database::Open(files.base, options);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (a INT, b INT)").ok());

  std::atomic<bool> done{false};
  std::atomic<int> errors{0};
  std::thread writer([&] {
    for (int i = 0; i < kRows; ++i) {
      auto r = db->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                           ", " + std::to_string(3 * i) + ")");
      if (!r.ok()) errors.fetch_add(1);
    }
    done.store(true);
  });

  int64_t last_count = 0;
  while (!done.load()) {
    auto r = db->Execute("SELECT COUNT(*), SUM(a), SUM(b) FROM t");
    ASSERT_TRUE(r.ok()) << r.status().ToString();
    int64_t n = r.value().rows[0][0].int_value();
    EXPECT_GE(n, last_count);  // a single appender only grows the prefix
    last_count = n;
    if (n > 0) {
      int64_t sum = n * (n - 1) / 2;
      EXPECT_EQ(r.value().rows[0][1], Value::Int(sum)) << "n=" << n;
      EXPECT_EQ(r.value().rows[0][2], Value::Int(3 * sum)) << "n=" << n;
    }
  }
  writer.join();
  EXPECT_EQ(errors.load(), 0);

  auto fin = db->Execute(
      "SELECT a % 3, COUNT(*), SUM(b) FROM t GROUP BY a % 3 ORDER BY 1");
  ASSERT_TRUE(fin.ok());
  ASSERT_EQ(fin.value().num_rows(), 3u);
  EXPECT_EQ(fin.value().rows[0][1], Value::Int(kRows / 3));
  auto count = db->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(count.ok());
  EXPECT_EQ(count.value().rows[0][0], Value::Int(kRows));
}

// Pager level: 4 dispenser workers with private cursors sweep a file while
// one writer mutates random slots through the slot API, behind a pool small
// enough that faults and evictions interleave with the latch-free reads.
// Values are self-validating (slot s always holds s·1000 + version), so a
// torn or misrouted read shows up as a value whose slot part is wrong; TSan
// over this test proves the dispenser + worker-pool protocol race-free.
TEST(MorselScanTest, DispenserWorkersReadBesideAPagerWriter) {
  constexpr uint64_t kPages = 24;
  constexpr uint64_t kTotal = kPages * kSlots;
  PagerConfig config;
  config.max_resident_pages = 16;
  Pager pager(config);
  FileId f = pager.CreateFile();
  {
    PageCursor init(pager, f);
    for (uint64_t s = 0; s < kTotal; ++s) {
      init.Write(s, Value::Int(static_cast<int64_t>(s * 1000)));
    }
  }

  std::vector<Morsel> morsels;
  for (uint64_t s = 0, i = 0; s < kTotal; s += 512, ++i) {
    morsels.push_back(Morsel{i, s, 512});
  }
  MorselDispenser dispenser(std::move(morsels));
  std::atomic<bool> stop{false};
  std::atomic<int> bad{0};
  std::thread writer([&] {
    std::mt19937 rng(7);
    while (!stop.load()) {
      uint64_t s = rng() % kTotal;
      pager.Write(f, s,
                  Value::Int(static_cast<int64_t>(s * 1000 + rng() % 1000)));
    }
  });
  std::vector<std::thread> workers;
  for (int w = 0; w < 4; ++w) {
    workers.emplace_back([&] {
      PageCursor cursor(pager, f);
      Morsel m;
      while (dispenser.Next(&m)) {
        for (uint64_t s = m.start; s < m.start + m.count; ++s) {
          int64_t got = cursor.Read(s).int_value();
          if (got / 1000 != static_cast<int64_t>(s)) bad.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& t : workers) t.join();
  stop.store(true);
  writer.join();
  EXPECT_EQ(bad.load(), 0);
}

// ---------------------------------------------------------------------------
// The advisory pair lock: double open fails fast
// ---------------------------------------------------------------------------

TEST(FileLockTest, SecondOpenFailsFastWhileTheFirstLives) {
  DurableBase files("double_open");
  auto first = Database::TryOpen(files.base);
  ASSERT_TRUE(first.ok()) << first.status().ToString();
  ASSERT_TRUE(first.value()->Execute("CREATE TABLE t (a INT)").ok());

  auto second = Database::TryOpen(files.base);
  ASSERT_FALSE(second.ok()) << "double open must be refused";
  EXPECT_EQ(second.status().code(), StatusCode::kAlreadyExists)
      << second.status().ToString();

  first.value().reset();  // destroys the first database, releasing the lock
  auto third = Database::TryOpen(files.base);
  ASSERT_TRUE(third.ok()) << third.status().ToString();
  auto r = third.value()->Execute("SELECT COUNT(*) FROM t");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value().rows[0][0], Value::Int(0));
}

}  // namespace
}  // namespace dataspread
