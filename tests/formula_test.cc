#include <gtest/gtest.h>

#include "formula/formula_parser.h"
#include "formula/functions.h"

namespace dataspread::formula {
namespace {

FExprPtr ParseOrDie(const std::string& text) {
  auto r = ParseFormula(text);
  EXPECT_TRUE(r.ok()) << text << " -> " << r.status().ToString();
  return r.ok() ? std::move(r).value() : nullptr;
}

TEST(FormulaParserTest, Literals) {
  EXPECT_EQ(ParseOrDie("=42")->literal, Value::Int(42));
  EXPECT_EQ(ParseOrDie("=4.5")->literal, Value::Real(4.5));
  EXPECT_EQ(ParseOrDie("=\"hi\"")->literal, Value::Text("hi"));
  EXPECT_EQ(ParseOrDie("=TRUE")->literal, Value::Bool(true));
  EXPECT_EQ(ParseOrDie("='sql text'")->literal, Value::Text("sql text"));
}

TEST(FormulaParserTest, CellAndRangeRefs) {
  FExprPtr cell = ParseOrDie("=$B$2");
  ASSERT_EQ(cell->kind, FKind::kCellRef);
  EXPECT_EQ(cell->cell.row, 1);
  EXPECT_EQ(cell->cell.col, 1);
  EXPECT_TRUE(cell->cell.abs_row);
  FExprPtr range = ParseOrDie("=SUM(A1:B10)");
  ASSERT_EQ(range->args[0]->kind, FKind::kRange);
  EXPECT_EQ(range->args[0]->range.num_rows(), 10);
  FExprPtr sheet_ref = ParseOrDie("=Data!C3");
  EXPECT_EQ(sheet_ref->cell.sheet, "Data");
  FExprPtr sheet_range = ParseOrDie("=SUM(Data!A1:A5)");
  EXPECT_EQ(sheet_range->args[0]->range.sheet, "Data");
}

TEST(FormulaParserTest, OperatorPrecedence) {
  // ToText emits minimal parentheses; each output re-parses identically.
  EXPECT_EQ(ParseOrDie("=1+2*3")->ToText(), "1+2*3");
  EXPECT_EQ(ParseOrDie("=(1+2)*3")->ToText(), "(1+2)*3");
  EXPECT_EQ(ParseOrDie("=2^3^2")->ToText(), "2^3^2");       // right assoc
  EXPECT_EQ(ParseOrDie("=(2^3)^2")->ToText(), "(2^3)^2");
  EXPECT_EQ(ParseOrDie("=1-(2-3)")->ToText(), "1-(2-3)");
  EXPECT_EQ(ParseOrDie("=1-2-3")->ToText(), "1-2-3");
  EXPECT_EQ(ParseOrDie("=1+2=3")->ToText(), "1+2=3");
  EXPECT_EQ(ParseOrDie("=\"a\"&1+2")->ToText(), "\"a\"&1+2");
  EXPECT_EQ(ParseOrDie("=-2^2")->ToText(), "-2^2");  // unary binds tighter
  EXPECT_EQ(ParseOrDie("=-(2+1)")->ToText(), "-(2+1)");
}

TEST(FormulaParserTest, FunctionsNested) {
  FExprPtr f = ParseOrDie("=IF(SUM(A1:A3)>10, MAX(B1,B2), 0)");
  EXPECT_EQ(f->kind, FKind::kFunction);
  EXPECT_EQ(f->op, "IF");
  ASSERT_EQ(f->args.size(), 3u);
}

TEST(FormulaParserTest, HybridDetection) {
  EXPECT_TRUE(IsHybridFormula(*ParseOrDie("=DBSQL(\"SELECT 1\")")));
  EXPECT_TRUE(IsHybridFormula(*ParseOrDie("=DBTABLE(\"movies\")")));
  EXPECT_FALSE(IsHybridFormula(*ParseOrDie("=SUM(A1:A2)")));
}

TEST(FormulaParserTest, Errors) {
  EXPECT_FALSE(ParseFormula("1+2").ok());     // missing '='
  EXPECT_FALSE(ParseFormula("=1+").ok());
  EXPECT_FALSE(ParseFormula("=SUM(A1").ok());
  EXPECT_FALSE(ParseFormula("=\"unterminated").ok());
  EXPECT_FALSE(ParseFormula("=A1:").ok());
}

TEST(FormulaParserTest, ToTextRoundTrips) {
  for (const char* text :
       {"=(A1+B2)", "=SUM($A$1:B10)", "=IF((A1>0),\"yes\",\"no\")",
        "=Data!C3", "=((1+2)*3)"}) {
    FExprPtr ast = ParseOrDie(text);
    FExprPtr again = ParseOrDie("=" + ast->ToText());
    EXPECT_EQ(again->ToText(), ast->ToText()) << text;
  }
}

// ---------------------------------------------------------------------------
// Function library
// ---------------------------------------------------------------------------

FArg Range(std::vector<Value> values, int64_t rows, int64_t cols) {
  FArg a;
  a.is_range = true;
  a.rows = rows;
  a.cols = cols;
  a.grid = std::move(values);
  return a;
}

TEST(FunctionsTest, CoerceToNumber) {
  EXPECT_EQ(CoerceToNumber(Value::Null()), Value::Real(0.0));
  EXPECT_EQ(CoerceToNumber(Value::Bool(true)), Value::Real(1.0));
  EXPECT_EQ(CoerceToNumber(Value::Text("2.5")), Value::Real(2.5));
  EXPECT_TRUE(CoerceToNumber(Value::Text("abc")).is_error());
}

TEST(FunctionsTest, SumSkipsTextInRangesButCoercesScalars) {
  std::vector<FArg> args;
  args.push_back(Range({Value::Int(1), Value::Text("x"), Value::Real(2.5),
                        Value::Null()},
                       4, 1));
  args.push_back(FArg::Scalar(Value::Text("10")));
  EXPECT_EQ(CallBuiltin("SUM", args), Value::Real(13.5));
}

TEST(FunctionsTest, AverageMinMaxCountMedian) {
  std::vector<FArg> args;
  args.push_back(Range({Value::Int(4), Value::Int(1), Value::Int(7),
                        Value::Text("skip")},
                       4, 1));
  EXPECT_EQ(CallBuiltin("AVERAGE", args), Value::Real(4.0));
  EXPECT_EQ(CallBuiltin("MIN", args), Value::Real(1.0));
  EXPECT_EQ(CallBuiltin("MAX", args), Value::Real(7.0));
  EXPECT_EQ(CallBuiltin("COUNT", args), Value::Int(3));
  EXPECT_EQ(CallBuiltin("COUNTA", args), Value::Int(4));
  EXPECT_EQ(CallBuiltin("MEDIAN", args), Value::Real(4.0));
}

TEST(FunctionsTest, AverageOfNothingIsDivZero) {
  std::vector<FArg> args;
  args.push_back(Range({Value::Null()}, 1, 1));
  EXPECT_EQ(CallBuiltin("AVERAGE", args), Value::Error("#DIV/0!"));
}

TEST(FunctionsTest, ErrorsPropagateThroughAggregates) {
  std::vector<FArg> args;
  args.push_back(Range({Value::Int(1), Value::Error("#REF!")}, 2, 1));
  EXPECT_EQ(CallBuiltin("SUM", args), Value::Error("#REF!"));
}

TEST(FunctionsTest, IfAndOrNot) {
  std::vector<FArg> t{FArg::Scalar(Value::Bool(true)),
                      FArg::Scalar(Value::Text("yes")),
                      FArg::Scalar(Value::Text("no"))};
  EXPECT_EQ(CallBuiltin("IF", t), Value::Text("yes"));
  std::vector<FArg> f{FArg::Scalar(Value::Int(0)),
                      FArg::Scalar(Value::Text("yes"))};
  EXPECT_EQ(CallBuiltin("IF", f), Value::Bool(false));  // no else branch
  std::vector<FArg> ao{FArg::Scalar(Value::Bool(true)),
                       FArg::Scalar(Value::Int(0))};
  EXPECT_EQ(CallBuiltin("AND", ao), Value::Bool(false));
  EXPECT_EQ(CallBuiltin("OR", ao), Value::Bool(true));
  std::vector<FArg> n{FArg::Scalar(Value::Bool(false))};
  EXPECT_EQ(CallBuiltin("NOT", n), Value::Bool(true));
}

TEST(FunctionsTest, MathAndText) {
  std::vector<FArg> mod{FArg::Scalar(Value::Int(-7)), FArg::Scalar(Value::Int(3))};
  EXPECT_EQ(CallBuiltin("MOD", mod), Value::Real(2.0));  // Excel convention
  std::vector<FArg> sqrt_neg{FArg::Scalar(Value::Int(-1))};
  EXPECT_EQ(CallBuiltin("SQRT", sqrt_neg), Value::Error("#NUM!"));
  std::vector<FArg> len{FArg::Scalar(Value::Text("abc"))};
  EXPECT_EQ(CallBuiltin("LEN", len), Value::Int(3));
  std::vector<FArg> cc{FArg::Scalar(Value::Text("a")),
                       FArg::Scalar(Value::Int(1)),
                       FArg::Scalar(Value::Null())};
  EXPECT_EQ(CallBuiltin("CONCAT", cc), Value::Text("a1"));
}

TEST(FunctionsTest, IfErrorAndIsBlank) {
  std::vector<FArg> ie{FArg::Scalar(Value::Error("#DIV/0!")),
                       FArg::Scalar(Value::Int(0))};
  EXPECT_EQ(CallBuiltin("IFERROR", ie), Value::Int(0));
  std::vector<FArg> ok{FArg::Scalar(Value::Int(5)),
                       FArg::Scalar(Value::Int(0))};
  EXPECT_EQ(CallBuiltin("IFERROR", ok), Value::Int(5));
  std::vector<FArg> blank{FArg::Scalar(Value::Null())};
  EXPECT_EQ(CallBuiltin("ISBLANK", blank), Value::Bool(true));
}

TEST(FunctionsTest, Vlookup) {
  // Table: key | name
  FArg table = Range({Value::Int(1), Value::Text("ann"),    //
                      Value::Int(2), Value::Text("bob"),    //
                      Value::Int(3), Value::Text("cat")},
                     3, 2);
  std::vector<FArg> args{FArg::Scalar(Value::Int(2)), table,
                         FArg::Scalar(Value::Int(2))};
  EXPECT_EQ(CallBuiltin("VLOOKUP", args), Value::Text("bob"));
  std::vector<FArg> missing{FArg::Scalar(Value::Int(9)), table,
                            FArg::Scalar(Value::Int(2))};
  EXPECT_EQ(CallBuiltin("VLOOKUP", missing), Value::Error("#N/A"));
  // Approximate mode: last value <= key.
  std::vector<FArg> approx{FArg::Scalar(Value::Real(2.7)), table,
                           FArg::Scalar(Value::Int(2)),
                           FArg::Scalar(Value::Bool(true))};
  EXPECT_EQ(CallBuiltin("VLOOKUP", approx), Value::Text("bob"));
}

TEST(FunctionsTest, SumifCountif) {
  FArg scores = Range({Value::Int(95), Value::Int(80), Value::Int(92),
                       Value::Int(60)},
                      4, 1);
  std::vector<FArg> count{scores, FArg::Scalar(Value::Text(">90"))};
  EXPECT_EQ(CallBuiltin("COUNTIF", count), Value::Int(2));
  std::vector<FArg> sum{scores, FArg::Scalar(Value::Text(">90"))};
  EXPECT_EQ(CallBuiltin("SUMIF", sum), Value::Real(187.0));
  // With a separate sum range.
  FArg bonus = Range({Value::Int(1), Value::Int(2), Value::Int(3),
                      Value::Int(4)},
                     4, 1);
  std::vector<FArg> sum2{scores, FArg::Scalar(Value::Text(">90")), bonus};
  EXPECT_EQ(CallBuiltin("SUMIF", sum2), Value::Real(4.0));
  // Equality criteria without an operator.
  std::vector<FArg> eq{scores, FArg::Scalar(Value::Int(80))};
  EXPECT_EQ(CallBuiltin("COUNTIF", eq), Value::Int(1));
}

TEST(FunctionsTest, UnknownFunctionIsNameError) {
  std::vector<FArg> none;
  EXPECT_EQ(CallBuiltin("FROBNICATE", none), Value::Error("#NAME?"));
  EXPECT_FALSE(IsBuiltinFunction("DBSQL"));  // hybrid, not built-in
  EXPECT_TRUE(IsBuiltinFunction("SUM"));
}

}  // namespace
}  // namespace dataspread::formula
