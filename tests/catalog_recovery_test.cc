// Catalog persistence & schema recovery (DESIGN.md §6 "Catalog recovery").
//
// What PR 4 proved for page *data*, this suite proves for the *catalog*: a
// durable Database can be closed — or SIGKILLed — and reopened by path
// alone, with every table, column, type, attribute group, display order,
// and row byte-identical. Layers under test:
//   - clean close → reopen for all four storage models, including schema
//     churn (add/drop/rename columns, hybrid Reorganize) and positional
//     DML (middle inserts, deletes) that exercises the order/rid side files,
//   - Database::Open(path) — reopen with zero application-side rebuild,
//   - DROP TABLE durability and the orphan-file sweep,
//   - the crash → recover → continue → crash shadow property at the DDL
//     level (mirroring wal_test's WalShadowTest one layer up),
//   - torn-tail consistency: truncating the log at arbitrary byte offsets
//     must always recover a *structurally consistent* catalog, and — since
//     WAL statement brackets (DESIGN.md §7) — exactly a committed-statement
//     prefix on every model (CommittedPrefixTest),
//   - Close() semantics and the deferred-free regression (structural ops no
//     longer fsync per spilled-slot free).
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <functional>
#include <memory>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include "db/database.h"
#include "storage/hybrid_store.h"
#include "storage/spill_file.h"
#include "storage/wal.h"

namespace dataspread {
namespace {

using storage::FileId;
using storage::Pager;
using storage::PagerConfig;
using storage::Wal;

/// The wal/spill pair of one durable database, removed on scope exit.
struct DurablePair {
  explicit DurablePair(const std::string& tag) {
    base = ::testing::TempDir() + "ds_catalog_" + tag;
    wal = base + ".wal";
    spill = base + ".pages";
    std::remove(wal.c_str());
    std::remove(spill.c_str());
  }
  ~DurablePair() {
    std::remove(wal.c_str());
    std::remove(spill.c_str());
  }
  DatabaseOptions Options(size_t cap = 0) const {
    DatabaseOptions options;
    options.pager.max_resident_pages = cap;
    options.pager.spill_path = spill;
    options.pager.wal_path = wal;
    options.pager.durable_spill = true;
    return options;
  }
  std::string base, wal, spill;
};

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

/// Like ReadFileBytes, but an absent file (a pool that never spilled) reads
/// as empty instead of failing.
std::string ReadFileBytesIfAny(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  if (f == nullptr) return std::string();
  std::fclose(f);
  return ReadFileBytes(path);
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

/// Everything a reopen must preserve, in comparable form.
struct TableSnapshot {
  std::string name;
  std::string schema;
  StorageModel model = StorageModel::kHybrid;
  size_t num_groups = 0;  // hybrid only
  std::vector<Row> rows;  // display order

  bool operator==(const TableSnapshot& o) const {
    if (name != o.name || schema != o.schema || model != o.model ||
        num_groups != o.num_groups || rows.size() != o.rows.size()) {
      return false;
    }
    for (size_t r = 0; r < rows.size(); ++r) {
      if (rows[r].size() != o.rows[r].size()) return false;
      for (size_t c = 0; c < rows[r].size(); ++c) {
        if (!(rows[r][c] == o.rows[r][c]) ||
            rows[r][c].type() != o.rows[r][c].type()) {
          return false;
        }
      }
    }
    return true;
  }
};

std::vector<TableSnapshot> Snapshot(Database& db) {
  std::vector<TableSnapshot> out;
  for (const std::string& name : db.catalog().TableNames()) {
    Table* t = db.catalog().GetTable(name).ValueOrDie();
    TableSnapshot snap;
    snap.name = t->name();
    snap.schema = t->schema().ToString();
    snap.model = t->storage().model();
    if (snap.model == StorageModel::kHybrid) {
      snap.num_groups =
          static_cast<HybridStore&>(t->storage()).num_groups();
    }
    snap.rows.reserve(t->num_rows());
    for (size_t r = 0; r < t->num_rows(); ++r) {
      snap.rows.push_back(t->GetRowAt(r).ValueOrDie());
    }
    out.push_back(std::move(snap));
  }
  return out;
}

void ExpectSnapshotsEqual(const std::vector<TableSnapshot>& got,
                          const std::vector<TableSnapshot>& want,
                          const std::string& context) {
  ASSERT_EQ(got.size(), want.size()) << context;
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_TRUE(got[i] == want[i])
        << context << ": table '" << want[i].name << "' diverged (schema "
        << got[i].schema << " vs " << want[i].schema << ", " << got[i].rows.size()
        << " vs " << want[i].rows.size() << " rows)";
  }
}

constexpr StorageModel kAllModels[] = {StorageModel::kRow,
                                       StorageModel::kColumn,
                                       StorageModel::kRcv,
                                       StorageModel::kHybrid};

/// A workload touching every catalog-persistence surface: appends with
/// NULLs and TEXT, middle inserts, point updates, deletes, and schema
/// churn — the display order ends up nothing like storage order.
void DriveTable(Table* t, uint32_t seed) {
  std::mt19937 rng(seed);
  for (int i = 0; i < 120; ++i) {
    Row row{Value::Int(i),
            (i % 7 == 0) ? Value::Null()
                         : Value::Text("v" + std::to_string(rng() % 64)),
            Value::Real(i / 3.0)};
    ASSERT_TRUE(t->AppendRow(std::move(row)).ok());
  }
  for (int i = 0; i < 25; ++i) {
    size_t pos = rng() % (t->num_rows() + 1);
    ASSERT_TRUE(t->InsertRowAt(pos, Row{Value::Int(1000 + i),
                                        Value::Text("mid"),
                                        Value::Null()})
                    .ok());
  }
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(t->DeleteRowAt(rng() % t->num_rows()).ok());
  }
  for (int i = 0; i < 40; ++i) {
    size_t pos = rng() % t->num_rows();
    size_t col = rng() % t->schema().num_columns();
    Value v = (rng() % 3 == 0) ? Value::Null()
                               : Value::Int(static_cast<int64_t>(rng() % 999));
    ASSERT_TRUE(t->UpdateAt(pos, col, std::move(v)).ok());
  }
  ASSERT_TRUE(
      t->AddColumn(ColumnDef{"extra", DataType::kText, false},
                   Value::Text("dflt"))
          .ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(t->UpdateAt(rng() % t->num_rows(),
                            t->schema().num_columns() - 1,
                            Value::Text("set" + std::to_string(i)))
                    .ok());
  }
  ASSERT_TRUE(t->RenameColumn("txt", "label").ok());
  ASSERT_TRUE(t->DropColumn("real").ok());
}

Schema ThreeColumnSchema() {
  return Schema({ColumnDef{"id", DataType::kInt, false},
                 ColumnDef{"txt", DataType::kText, false},
                 ColumnDef{"real", DataType::kReal, false}});
}

// ---------------------------------------------------------------------------
// Clean close → reopen, all four models, schema churn included
// ---------------------------------------------------------------------------

class CloseReopenTest : public ::testing::TestWithParam<size_t> {};

TEST_P(CloseReopenTest, AllModelsSurviveCloseAndReopenByteIdentically) {
  size_t cap = GetParam();
  DurablePair pair("close_reopen_" + std::to_string(cap));
  std::vector<TableSnapshot> want;
  {
    Database db(pair.Options(cap));
    for (StorageModel model : kAllModels) {
      Table* t = db.catalog()
                     .CreateTable(std::string("t_") + StorageModelName(model),
                                  ThreeColumnSchema(), model)
                     .ValueOrDie();
      DriveTable(t, 42);
    }
    // Hybrid-specific: merge groups through the logged path, then keep
    // mutating so the rebound group structure carries post-reorganize state.
    Table* hybrid = db.catalog().GetTable("t_hybrid").ValueOrDie();
    ASSERT_TRUE(hybrid->Reorganize().ok());
    ASSERT_TRUE(hybrid->AddColumn(ColumnDef{"post", DataType::kInt, false},
                                  Value::Int(9))
                    .ok());
    ASSERT_TRUE(hybrid->UpdateAt(0, hybrid->schema().num_columns() - 1,
                                 Value::Int(-9))
                    .ok());
    want = Snapshot(db);
  }  // clean close: destructor checkpoints with the catalog embedded

  Database reopened(pair.Options(cap));
  ExpectSnapshotsEqual(Snapshot(reopened), want, "clean reopen");
  // The reopened catalog is live, not a read-only husk: keep mutating.
  Table* t = reopened.catalog().GetTable("t_row").ValueOrDie();
  size_t rows = t->num_rows();
  ASSERT_TRUE(
      t->AppendRow(Row{Value::Int(-1), Value::Text("after"), Value::Null()})
          .ok());
  EXPECT_EQ(t->num_rows(), rows + 1);
}

INSTANTIATE_TEST_SUITE_P(PoolSizes, CloseReopenTest,
                         ::testing::Values(size_t{0}, size_t{64}, size_t{4}));

// ---------------------------------------------------------------------------
// Open-by-path: zero application-side rebuild
// ---------------------------------------------------------------------------

TEST(OpenByPathTest, SqlDatabaseReopensWithNoApplicationState) {
  DurablePair pair("open_by_path");
  {
    auto db = Database::Open(pair.base);
    ASSERT_TRUE(
        db->Execute("CREATE TABLE movies (id INT PRIMARY KEY, title TEXT)")
            .ok());
    for (int i = 0; i < 50; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO movies VALUES (" +
                              std::to_string(i) + ", 'm" +
                              std::to_string(i * 31) + "')")
                      .ok());
    }
    ASSERT_TRUE(
        db->Execute("ALTER TABLE movies ADD COLUMN year INT DEFAULT 1999")
            .ok());
    ASSERT_TRUE(
        db->Execute("UPDATE movies SET year = 2024 WHERE id = 7").ok());
    ASSERT_TRUE(db->Execute("DELETE FROM movies WHERE id = 13").ok());
  }
  auto db = Database::Open(pair.base);
  auto rs = db->Execute("SELECT COUNT(*) FROM movies");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(49));
  rs = db->Execute("SELECT title, year FROM movies WHERE id = 7");
  ASSERT_TRUE(rs.ok());
  ASSERT_EQ(rs.value().rows.size(), 1u);
  EXPECT_EQ(rs.value().rows[0][0], Value::Text("m217"));
  EXPECT_EQ(rs.value().rows[0][1], Value::Int(2024));
  // The PK index was rebuilt from data: key-direct updates work.
  ASSERT_TRUE(db->Execute("UPDATE movies SET title = 'x' WHERE id = 3").ok());
}

// ---------------------------------------------------------------------------
// DROP TABLE durability + the orphan-file sweep
// ---------------------------------------------------------------------------

TEST(DropTableTest, DropSurvivesCrashAndOrphansAreSwept) {
  DurablePair pair("drop_orphan");
  {
    Database db(pair.Options(/*cap=*/8));
    for (const char* name : {"keep", "victim"}) {
      Table* t =
          db.catalog().CreateTable(name, ThreeColumnSchema()).ValueOrDie();
      for (int i = 0; i < 300; ++i) {
        ASSERT_TRUE(t->AppendRow(Row{Value::Int(i), Value::Text("t"),
                                     Value::Real(1.5)})
                        .ok());
      }
    }
    ASSERT_TRUE(db.catalog().DropTable("victim").ok());
    // An orphan: a file created behind the catalog's back, as a DDL torn
    // before its record became durable would leave it.
    FileId orphan = db.pager().CreateFile();
    db.pager().Write(orphan, 0, Value::Int(77));
    db.pager().CrashForTesting();
  }
  Database reopened(pair.Options(/*cap=*/8));
  EXPECT_TRUE(reopened.catalog().HasTable("keep"));
  EXPECT_FALSE(reopened.catalog().HasTable("victim"));
  Table* keep = reopened.catalog().GetTable("keep").ValueOrDie();
  EXPECT_EQ(keep->num_rows(), 300u);
  // Sweep check: every live pager file is accounted to the surviving table.
  TableDescriptor desc = keep->Describe();
  std::vector<FileId> expected_files = {desc.order_file, desc.rid_file};
  for (uint64_t f : desc.manifest.files) expected_files.push_back(f);
  for (const StorageManifest::Group& g : desc.manifest.groups) {
    expected_files.push_back(g.file);
  }
  std::sort(expected_files.begin(), expected_files.end());
  EXPECT_EQ(reopened.pager().FileIds(), expected_files);
}

// ---------------------------------------------------------------------------
// Close() seals the database
// ---------------------------------------------------------------------------

TEST(CloseTest, CloseCheckpointsAndRejectsFurtherMutations) {
  DurablePair pair("close_seals");
  Database db(pair.Options());
  Table* t = db.catalog().CreateTable("t", ThreeColumnSchema()).ValueOrDie();
  ASSERT_TRUE(
      t->AppendRow(Row{Value::Int(1), Value::Text("a"), Value::Null()}).ok());
  db.Close();
  EXPECT_TRUE(db.closed());
  EXPECT_FALSE(db.Execute("INSERT INTO t VALUES (2, 'b', 0.5)").ok());
  EXPECT_FALSE(db.CreateTable("u", ThreeColumnSchema()).ok());
  // Reads still serve (the paper's pane path bypasses Execute).
  EXPECT_EQ(t->GetRowAt(0).ValueOrDie()[0], Value::Int(1));
  // Close is a checkpoint: the log holds nothing but the snapshot records.
  EXPECT_EQ(db.pager().wal()->bytes_since_checkpoint(), 0u);
}

// ---------------------------------------------------------------------------
// Crash → recover → continue → crash: the DDL-level shadow property
// ---------------------------------------------------------------------------

class CatalogShadowTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CatalogShadowTest, RandomDdlAndDmlSurviveRepeatedCrashes) {
  std::mt19937 rng(GetParam());
  DurablePair pair("shadow_" + std::to_string(GetParam()));
  // The shadow: an identical scratch database receiving the same op tape.
  Database shadow;
  auto durable = std::make_unique<Database>(pair.Options(/*cap=*/6));

  int table_counter = 0;
  auto create_pair = [&](StorageModel model) {
    std::string name = "t" + std::to_string(table_counter++);
    Schema schema({ColumnDef{"a", DataType::kInt, false},
                   ColumnDef{"b", DataType::kText, false}});
    ASSERT_TRUE(durable->catalog().CreateTable(name, schema, model).ok());
    ASSERT_TRUE(shadow.catalog().CreateTable(name, schema, model).ok());
  };
  for (StorageModel model : kAllModels) create_pair(model);

  auto random_table = [&]() -> std::string {
    std::vector<std::string> names = shadow.catalog().TableNames();
    return names[rng() % names.size()];
  };
  auto on_both = [&](const std::function<Status(Table*)>& op,
                     const std::string& name) {
    Table* a = durable->catalog().GetTable(name).ValueOrDie();
    Table* b = shadow.catalog().GetTable(name).ValueOrDie();
    Status sa = op(a);
    Status sb = op(b);
    ASSERT_EQ(sa.ok(), sb.ok()) << sa.message() << " / " << sb.message();
  };

  int column_counter = 0;
  for (int round = 0; round < 4; ++round) {
    for (int step = 0; step < 220; ++step) {
      uint32_t pick = rng() % 100;
      std::string name = random_table();
      uint32_t arg = rng();
      if (pick < 55) {
        on_both(
            [&](Table* t) {
              size_t pos = t->num_rows() == 0 ? 0 : arg % (t->num_rows() + 1);
              Row row;
              for (size_t c = 0; c < t->schema().num_columns(); ++c) {
                row.push_back(c % 2 == 0
                                  ? Value::Int(static_cast<int64_t>(arg % 500))
                                  : Value::Text("s" + std::to_string(arg % 90)));
              }
              return t->InsertRowAt(pos, std::move(row));
            },
            name);
      } else if (pick < 70) {
        on_both(
            [&](Table* t) {
              if (t->num_rows() == 0) return Status::OK();
              return t->DeleteRowAt(arg % t->num_rows());
            },
            name);
      } else if (pick < 85) {
        on_both(
            [&](Table* t) {
              if (t->num_rows() == 0) return Status::OK();
              return t->UpdateAt(arg % t->num_rows(),
                                 arg % t->schema().num_columns(),
                                 (arg % 5 == 0)
                                     ? Value::Null()
                                     : Value::Int(static_cast<int64_t>(arg)));
            },
            name);
      } else if (pick < 91) {
        std::string col = "c" + std::to_string(column_counter++);
        on_both(
            [&](Table* t) {
              return t->AddColumn(ColumnDef{col, DataType::kInt, false},
                                  Value::Int(-7));
            },
            name);
      } else if (pick < 95) {
        on_both(
            [&](Table* t) {
              if (t->schema().num_columns() <= 1) return Status::OK();
              size_t col = 1 + arg % (t->schema().num_columns() - 1);
              return t->DropColumn(t->schema().column(col).name);
            },
            name);
      } else if (pick < 97) {
        on_both([&](Table* t) { return t->Reorganize(); }, name);
      } else if (pick < 99 && shadow.catalog().size() > 2) {
        ASSERT_TRUE(durable->catalog().DropTable(name).ok());
        ASSERT_TRUE(shadow.catalog().DropTable(name).ok());
      } else {
        create_pair(kAllModels[arg % 4]);
      }
      if (rng() % 50 == 0) (void)durable->Checkpoint();
    }
    // Crash mid-life (statement boundary; the torn-tail fuzz below covers
    // intra-statement cuts), recover, verify, continue on the same handle.
    durable->pager().CrashForTesting();
    durable.reset();  // the crash "kills the process": the pair lock drops
    durable = std::make_unique<Database>(pair.Options(/*cap=*/6));
    ExpectSnapshotsEqual(Snapshot(*durable), Snapshot(shadow),
                         "round " + std::to_string(round));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CatalogShadowTest,
                         ::testing::Values(11u, 131u, 1313u));

// ---------------------------------------------------------------------------
// Torn-tail consistency: arbitrary byte cuts recover a consistent catalog
// ---------------------------------------------------------------------------

TEST(CatalogTornTailTest, ArbitraryLogCutsRecoverAConsistentCatalog) {
  DurablePair pair("torn");
  DurablePair scratch("torn_scratch");
  {
    Database db(pair.Options(/*cap=*/4));
    for (StorageModel model : kAllModels) {
      Table* t = db.catalog()
                     .CreateTable(std::string("t_") + StorageModelName(model),
                                  ThreeColumnSchema(), model)
                     .ValueOrDie();
      std::mt19937 rng(5);
      for (int i = 0; i < 40; ++i) {
        ASSERT_TRUE(t->AppendRow(Row{Value::Int(i), Value::Text("x"),
                                     Value::Real(i / 2.0)})
                        .ok());
      }
      for (int i = 0; i < 12; ++i) {
        ASSERT_TRUE(t->InsertRowAt(rng() % (t->num_rows() + 1),
                                   Row{Value::Int(900 + i), Value::Null(),
                                       Value::Real(0.25)})
                        .ok());
        ASSERT_TRUE(t->DeleteRowAt(rng() % t->num_rows()).ok());
      }
      ASSERT_TRUE(t->AddColumn(ColumnDef{"d", DataType::kInt, false},
                               Value::Int(3))
                      .ok());
    }
    db.pager().CrashForTesting();
  }
  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytes(pair.spill);
  ASSERT_GT(wal_bytes.size(), Wal::kFileHeaderBytes);
  // Skip the rename-atomic checkpoint head (same reasoning as wal_test's
  // byte fuzz); then cut at a stride of offsets — every record boundary in
  // expectation, plus mid-record cuts the torn-tail scan must discard.
  size_t safe_start = Wal::kFileHeaderBytes;
  for (int i = 0; i < 2; ++i) {
    uint32_t body_len;
    std::memcpy(&body_len, wal_bytes.data() + safe_start, sizeof body_len);
    safe_start += Wal::kRecordHeaderBytes + body_len;
  }
  size_t cuts = 0;
  for (size_t len = safe_start; len <= wal_bytes.size();
       len += 1 + (len * 7) % 53) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    cuts += 1;
    Database recovered(scratch.Options(/*cap=*/4));
    // Structural consistency: every surviving table scans end to end with
    // schema-arity rows; the catalog references only live files.
    for (const std::string& name : recovered.catalog().TableNames()) {
      Table* t = recovered.catalog().GetTable(name).ValueOrDie();
      size_t arity = t->schema().num_columns();
      for (size_t r = 0; r < t->num_rows(); ++r) {
        auto row = t->GetRowAt(r);
        ASSERT_TRUE(row.ok())
            << "cut at byte " << len << ": table " << name << " row " << r;
        ASSERT_EQ(row.ValueOrDie().size(), arity)
            << "cut at byte " << len << ": table " << name;
      }
      // The recovered table stays writable — the reconciliation left
      // self-consistent maps behind.
      ASSERT_TRUE(t->AppendRow(std::vector<Value>(arity, Value::Null())).ok())
          << "cut at byte " << len << ": table " << name;
      ASSERT_TRUE(t->DeleteRowAt(t->num_rows() - 1).ok());
    }
  }
  ASSERT_GT(cuts, 100u);  // the stride actually swept the log
}

// ---------------------------------------------------------------------------
// Torn single statements recover all-or-nothing (content-exact)
// ---------------------------------------------------------------------------

/// The fuzz above proves *structural* consistency; this locks *content*:
/// cutting the log anywhere inside one positional DELETE or middle INSERT
/// must recover exactly the pre- or post-statement table — the stores'
/// copy-all-then-truncate-all delete phases and Attach's redo/undo repairs
/// make the statement atomic for the dense models (RCV may partially apply
/// within the documented one-row window). A second clean close→reopen per
/// cut proves the repair itself was persisted, not just held in memory.
class TornStatementTest
    : public ::testing::TestWithParam<std::tuple<StorageModel, bool>> {};

TEST_P(TornStatementTest, CutsInsideOneStatementRecoverAllOrNothing) {
  auto [model, is_delete] = GetParam();
  std::string tag = std::string("torn_stmt_") + StorageModelName(model) +
                    (is_delete ? "_del" : "_ins");
  DurablePair pair(tag);
  DurablePair scratch(tag + "_scratch");
  constexpr size_t kRows = 30;
  auto rows_of = [](Table* t) {
    std::vector<Row> rows;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      rows.push_back(t->GetRowAt(r).ValueOrDie());
    }
    return rows;
  };
  std::vector<Row> pre, post;
  size_t barrier_bytes = 0;
  {
    // cap=2: even a three-file row store spills, so the cuts also exercise
    // recovery over real write-backs.
    Database db(pair.Options(/*cap=*/2));
    Table* t = db.catalog().CreateTable("t", ThreeColumnSchema(), model)
                   .ValueOrDie();
    for (size_t i = 0; i < kRows; ++i) {
      ASSERT_TRUE(t->AppendRow(Row{Value::Int(static_cast<int64_t>(i)),
                                   (i % 5 == 0) ? Value::Null()
                                                : Value::Text("v" +
                                                              std::to_string(i)),
                                   Value::Real(i / 4.0)})
                      .ok());
    }
    // Committed middle inserts + a delete: the display order must differ
    // from storage order, so a repair that silently degrades to storage
    // order cannot masquerade as the pre-statement state.
    ASSERT_TRUE(t->InsertRowAt(0, Row{Value::Int(100), Value::Text("head"),
                                      Value::Real(0.5)})
                    .ok());
    ASSERT_TRUE(t->InsertRowAt(11, Row{Value::Int(101), Value::Text("mid"),
                                       Value::Null()})
                    .ok());
    ASSERT_TRUE(t->DeleteRowAt(20).ok());
    // The last *storage* row gets a NULL cell so a torn RCV delete
    // exercises the moved-row-NULL pre-step (display 0 is storage-last
    // here: the inserts appended to storage, the delete above consumed
    // the later one).
    ASSERT_TRUE(t->UpdateAt(0, 2, Value::Null()).ok());
    pre = rows_of(t);
    db.pager().SyncWal();  // the durability barrier: `pre` is committed
    barrier_bytes = ReadFileBytes(pair.wal).size();
    if (is_delete) {
      ASSERT_TRUE(t->DeleteRowAt(7).ok());
    } else {
      ASSERT_TRUE(t->InsertRowAt(5, Row{Value::Int(-5), Value::Text("mid"),
                                        Value::Null()})
                      .ok());
    }
    post = rows_of(t);
    db.pager().CrashForTesting();
  }
  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytesIfAny(pair.spill);
  ASSERT_GT(wal_bytes.size(), barrier_bytes);

  auto match = [](const std::vector<Row>& got, const std::vector<Row>& want) {
    if (got.size() != want.size()) return false;
    for (size_t r = 0; r < got.size(); ++r) {
      if (got[r].size() != want[r].size()) return false;
      for (size_t c = 0; c < got[r].size(); ++c) {
        if (!(got[r][c] == want[r][c])) return false;
      }
    }
    return true;
  };
  // Rows differing from `want` — RCV's documented partial window is at most
  // the one row the statement touched.
  auto mismatches = [](const std::vector<Row>& got,
                       const std::vector<Row>& want) {
    size_t n = 0;
    for (size_t r = 0; r < std::min(got.size(), want.size()); ++r) {
      for (size_t c = 0; c < got[r].size(); ++c) {
        if (!(got[r][c] == want[r][c])) {
          n += 1;
          break;
        }
      }
    }
    return n;
  };

  for (size_t len = barrier_bytes; len <= wal_bytes.size(); ++len) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    std::vector<Row> got;
    {
      Database db(scratch.Options(/*cap=*/4));
      Table* t = db.catalog().GetTable("t").ValueOrDie();
      got = rows_of(t);
      if (model == StorageModel::kRcv && is_delete) {
        // RCV delete: exactly post, or pre with at most the vacated row's
        // cells nulled (the pre-order pre-step window,
        // docs/DURABILITY.md). The *surviving* rows must never diverge.
        ASSERT_TRUE(match(got, post) ||
                    (got.size() == pre.size() && mismatches(got, pre) <= 1))
            << "cut at byte " << len << ": " << got.size() << " rows";
      } else if (model == StorageModel::kRcv) {
        // RCV insert: pre, or post with at most the inserted row itself
        // partially materialized.
        ASSERT_TRUE(match(got, pre) || mismatches(got, post) <= 1)
            << "cut at byte " << len << ": " << got.size() << " rows";
      } else {
        ASSERT_TRUE(match(got, pre) || match(got, post))
            << "cut at byte " << len << ": neither pre- nor post-statement "
            << "state (" << got.size() << " rows) — torn "
            << (is_delete ? "delete" : "insert") << " repair leak";
      }
    }  // clean close: the repair must have been persisted, not just held
    Database again(scratch.Options(/*cap=*/4));
    Table* t = again.catalog().GetTable("t").ValueOrDie();
    ASSERT_TRUE(match(rows_of(t), got))
        << "cut at byte " << len
        << ": state changed across a clean close/reopen — repair not durable";
    again.pager().CrashForTesting();  // leave scratch files for the next cut
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllModelsBothOps, TornStatementTest,
    ::testing::Combine(::testing::Values(StorageModel::kRow,
                                         StorageModel::kColumn,
                                         StorageModel::kRcv,
                                         StorageModel::kHybrid),
                       ::testing::Bool()),
    [](const auto& info) {
      return std::string(StorageModelName(std::get<0>(info.param))) +
             (std::get<1>(info.param) ? "_delete" : "_insert");
    });

// ---------------------------------------------------------------------------
// Statement brackets: cuts recover exactly the committed-statement prefix
// ---------------------------------------------------------------------------

/// TornStatementTest above still tolerates RCV's historical one-row partial
/// window; with WAL statement brackets that window is gone — recovery
/// discards a torn bracket wholesale, so *every* model recovers exactly a
/// committed-statement prefix, content-exact, with no reliance on Attach's
/// file-signature reconciliation (DESIGN.md §7). Three DML statements follow
/// a durability barrier; every byte cut must land on exactly one of the four
/// statement-boundary states, monotone in the cut point.
class CommittedPrefixTest : public ::testing::TestWithParam<StorageModel> {};

TEST_P(CommittedPrefixTest, CutsRecoverExactlyACommittedStatementPrefix) {
  StorageModel model = GetParam();
  std::string tag = std::string("committed_prefix_") + StorageModelName(model);
  DurablePair pair(tag);
  DurablePair scratch(tag + "_scratch");
  auto rows_of = [](Table* t) {
    std::vector<Row> rows;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      rows.push_back(t->GetRowAt(r).ValueOrDie());
    }
    return rows;
  };
  auto match = [](const std::vector<Row>& got, const std::vector<Row>& want) {
    if (got.size() != want.size()) return false;
    for (size_t r = 0; r < got.size(); ++r) {
      if (got[r].size() != want[r].size()) return false;
      for (size_t c = 0; c < got[r].size(); ++c) {
        if (!(got[r][c] == want[r][c])) return false;
      }
    }
    return true;
  };
  std::vector<std::vector<Row>> states;  // after the barrier + each statement
  size_t barrier_bytes = 0;
  {
    Database db(pair.Options(/*cap=*/2));
    Table* t = db.catalog().CreateTable("t", ThreeColumnSchema(), model)
                   .ValueOrDie();
    for (size_t i = 0; i < 20; ++i) {
      ASSERT_TRUE(t->AppendRow(Row{Value::Int(static_cast<int64_t>(i)),
                                   (i % 5 == 0) ? Value::Null()
                                                : Value::Text(std::to_string(i)),
                                   Value::Real(i / 4.0)})
                      .ok());
    }
    // Middle inserts so display order differs from storage order — a repair
    // degrading to storage order cannot fake a boundary state.
    ASSERT_TRUE(t->InsertRowAt(0, Row{Value::Int(100), Value::Text("head"),
                                      Value::Real(0.5)})
                    .ok());
    ASSERT_TRUE(t->InsertRowAt(9, Row{Value::Int(101), Value::Null(),
                                      Value::Real(1.5)})
                    .ok());
    db.pager().SyncWal();  // the durability barrier
    barrier_bytes = ReadFileBytes(pair.wal).size();
    states.push_back(rows_of(t));
    ASSERT_TRUE(t->InsertRowAt(5, Row{Value::Int(-5), Value::Text("mid"),
                                      Value::Null()})
                    .ok());
    states.push_back(rows_of(t));
    ASSERT_TRUE(t->DeleteRowAt(8).ok());
    states.push_back(rows_of(t));
    ASSERT_TRUE(t->UpdateAt(2, 1, Value::Text("patched")).ok());
    states.push_back(rows_of(t));
    db.pager().CrashForTesting();
  }
  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytesIfAny(pair.spill);
  ASSERT_GT(wal_bytes.size(), barrier_bytes);

  size_t last_matched = 0;
  for (size_t len = barrier_bytes; len <= wal_bytes.size(); ++len) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    Database recovered(scratch.Options(/*cap=*/4));
    Table* t = recovered.catalog().GetTable("t").ValueOrDie();
    std::vector<Row> got = rows_of(t);
    size_t matched = states.size();
    for (size_t k = last_matched; k < states.size(); ++k) {
      if (match(got, states[k])) {
        matched = k;
        break;
      }
    }
    ASSERT_LT(matched, states.size())
        << "cut at byte " << len << " (" << StorageModelName(model)
        << "): recovered " << got.size()
        << " rows matching no committed-statement boundary";
    last_matched = matched;
    recovered.pager().CrashForTesting();  // keep scratch for the next cut
  }
  EXPECT_EQ(last_matched, states.size() - 1)
      << "the full log must recover all three statements";
}

INSTANTIATE_TEST_SUITE_P(AllModels, CommittedPrefixTest,
                         ::testing::ValuesIn(kAllModels),
                         [](const auto& info) {
                           return std::string(StorageModelName(info.param));
                         });

// ---------------------------------------------------------------------------
// Transaction brackets: cuts recover the committed-TRANSACTION prefix
// ---------------------------------------------------------------------------

/// CommittedPrefixTest generalized to SQL multi-statement transactions: the
/// tape mixes committed, rolled-back, and (at the crash) open transactions,
/// each spanning several DML statements inside one WAL bracket. Every byte
/// cut must recover exactly a committed-transaction boundary — an open
/// transaction at the cut never leaks a single statement's effects, and a
/// rolled-back transaction is invisible at every cut (its bracket replays
/// as a net no-op).
class TxnCommittedPrefixTest : public ::testing::TestWithParam<StorageModel> {};

TEST_P(TxnCommittedPrefixTest, CutsRecoverExactlyACommittedTransactionPrefix) {
  StorageModel model = GetParam();
  std::string tag = std::string("txn_prefix_") + StorageModelName(model);
  DurablePair pair(tag);
  DurablePair scratch(tag + "_scratch");
  auto rows_of = [](Table* t) {
    std::vector<Row> rows;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      rows.push_back(t->GetRowAt(r).ValueOrDie());
    }
    return rows;
  };
  auto match = [](const std::vector<Row>& got, const std::vector<Row>& want) {
    if (got.size() != want.size()) return false;
    for (size_t r = 0; r < got.size(); ++r) {
      if (got[r].size() != want[r].size()) return false;
      for (size_t c = 0; c < got[r].size(); ++c) {
        if (!(got[r][c] == want[r][c])) return false;
      }
    }
    return true;
  };
  std::vector<std::vector<Row>> states;  // barrier + each committed txn
  size_t barrier_bytes = 0;
  {
    Database db(pair.Options(/*cap=*/2));
    Table* t = db.catalog().CreateTable("t", ThreeColumnSchema(), model)
                   .ValueOrDie();
    auto exec = [&](const std::string& sql) {
      auto r = db.Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    };
    for (int i = 0; i < 12; ++i) {
      exec("INSERT INTO t VALUES (" + std::to_string(i) + ", 't" +
           std::to_string(i) + "', " + std::to_string(i / 2.0) + ")");
    }
    db.pager().SyncWal();  // the durability barrier
    barrier_bytes = ReadFileBytes(pair.wal).size();
    states.push_back(rows_of(t));
    // Transaction 1, committed: three statements, one bracket.
    exec("BEGIN");
    exec("INSERT INTO t VALUES (100, 'txn1', 0.25)");
    exec("UPDATE t SET txt = 'patched' WHERE id = 3");
    exec("DELETE FROM t WHERE id = 7");
    exec("COMMIT");
    states.push_back(rows_of(t));
    // Transaction 2, rolled back: mutations + their undo compensations ride
    // one kTxnAbort bracket — invisible at every cut, so no boundary state.
    exec("BEGIN");
    exec("INSERT INTO t VALUES (200, 'txn2', 0.5)");
    exec("UPDATE t SET real = 9.75 WHERE id = 4");
    exec("DELETE FROM t WHERE id = 100");
    exec("ROLLBACK");
    ASSERT_TRUE(match(rows_of(t), states.back()));
    // Transaction 3, committed.
    exec("BEGIN");
    exec("UPDATE t SET real = 1.125 WHERE id = 0");
    exec("INSERT INTO t VALUES (300, 'txn3', 3.0)");
    exec("COMMIT");
    states.push_back(rows_of(t));
    // Transaction 4, open at the crash: its statements must never surface.
    exec("BEGIN");
    exec("INSERT INTO t VALUES (400, 'open', 4.0)");
    exec("DELETE FROM t WHERE id = 1");
    exec("UPDATE t SET txt = 'leak' WHERE id = 2");
    db.pager().CrashForTesting();
  }
  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytesIfAny(pair.spill);
  ASSERT_GT(wal_bytes.size(), barrier_bytes);

  size_t last_matched = 0;
  for (size_t len = barrier_bytes; len <= wal_bytes.size(); ++len) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    Database recovered(scratch.Options(/*cap=*/4));
    Table* t = recovered.catalog().GetTable("t").ValueOrDie();
    std::vector<Row> got = rows_of(t);
    size_t matched = states.size();
    for (size_t k = last_matched; k < states.size(); ++k) {
      if (match(got, states[k])) {
        matched = k;
        break;
      }
    }
    ASSERT_LT(matched, states.size())
        << "cut at byte " << len << " (" << StorageModelName(model)
        << "): recovered " << got.size()
        << " rows matching no committed-transaction boundary";
    last_matched = matched;
    recovered.pager().CrashForTesting();  // keep scratch for the next cut
  }
  EXPECT_EQ(last_matched, states.size() - 1)
      << "the full log must recover every committed transaction and nothing "
         "of the open one";
}

INSTANTIATE_TEST_SUITE_P(AllModels, TxnCommittedPrefixTest,
                         ::testing::ValuesIn(kAllModels),
                         [](const auto& info) {
                           return std::string(StorageModelName(info.param));
                         });

// ---------------------------------------------------------------------------
// Deferred-free regression: structural ops no longer fsync per free
// ---------------------------------------------------------------------------

TEST(DeferredFreeTest, TruncateAndDropPayNoFsyncAndSlotsRecycleAfterSync) {
  DurablePair pair("deferred_free");
  Pager pager(pair.Options(/*cap=*/4).pager);
  constexpr uint64_t kSlots = Pager::kSlotsPerPage;
  std::vector<FileId> files;
  for (int i = 0; i < 6; ++i) {
    FileId f = pager.CreateFile();
    for (uint64_t s = 0; s < 3 * kSlots; ++s) {
      pager.Write(f, s, Value::Int(static_cast<int64_t>(s)));
    }
    files.push_back(f);
  }
  (void)pager.FlushAll();  // every page has a spill slot now
  uint64_t syncs_before = pager.stats().wal_syncs;
  for (int i = 0; i < 5; ++i) pager.DropFile(files[i]);
  pager.Truncate(files[5], kSlots);
  // PR 4 paid one fsync per structural op that freed spilled slots; the
  // deferred-free list parks them instead.
  EXPECT_EQ(pager.stats().wal_syncs, syncs_before);
  // Parked slots are out of circulation until their freeing records are
  // durable...
  ASSERT_NE(pager.spill(), nullptr);
  size_t free_before = pager.spill()->ExportDirectory().free_slots.size();
  pager.SyncWal();
  // ...and return to the free list once the sync lands.
  size_t free_after = pager.spill()->ExportDirectory().free_slots.size();
  EXPECT_GT(free_after, free_before);
  EXPECT_GE(free_after, 16u);  // 5 files × 3 pages + 2 truncated pages

  // And the frees stay crash-safe: recover and verify the surviving file.
  pager.CrashForTesting();
  Pager recovered(pair.Options(/*cap=*/4).pager);
  EXPECT_TRUE(recovered.recovered());
  ASSERT_TRUE(recovered.HasFile(files[5]));
  EXPECT_EQ(recovered.FileSize(files[5]), kSlots);
  for (uint64_t s = 0; s < kSlots; ++s) {
    EXPECT_EQ(recovered.Read(files[5], s),
              Value::Int(static_cast<int64_t>(s)));
  }
  for (int i = 0; i < 5; ++i) EXPECT_FALSE(recovered.HasFile(files[i]));
}

// ---------------------------------------------------------------------------
// Two concurrent writers, disjoint tables: cuts recover a committed prefix
// of each session independently
// ---------------------------------------------------------------------------

/// The SQL-level twin of wal_test's InterleavedTxnBracketFuzzTest: two
/// threads, each on its own Session and its own table, run transaction
/// tapes concurrently, so their id-tagged brackets interleave freely in
/// one WAL. Because the tables are disjoint, the recovered state of each
/// table must equal one of *that* session's committed-transaction
/// boundaries — independently of how far the other session's tape got —
/// and both must advance monotonically as the cut moves right.
TEST(ConcurrentTxnPrefixTest, CutsRecoverCommittedPrefixesOfBothSessions) {
  DurablePair pair("two_writer_prefix");
  DurablePair scratch("two_writer_prefix_scratch");
  auto rows_of = [](Table* t) {
    std::vector<Row> rows;
    for (size_t r = 0; r < t->num_rows(); ++r) {
      rows.push_back(t->GetRowAt(r).ValueOrDie());
    }
    return rows;
  };
  auto match = [](const std::vector<Row>& got, const std::vector<Row>& want) {
    if (got.size() != want.size()) return false;
    for (size_t r = 0; r < got.size(); ++r) {
      if (got[r].size() != want[r].size()) return false;
      for (size_t c = 0; c < got[r].size(); ++c) {
        if (!(got[r][c] == want[r][c])) return false;
      }
    }
    return true;
  };
  // Each vector is owned by its session's thread while the tape runs.
  std::vector<std::vector<Row>> states_a, states_b;
  size_t barrier_bytes = 0;
  {
    Database db(pair.Options(/*cap=*/2));
    Table* ta = db.catalog()
                    .CreateTable("ta", ThreeColumnSchema(), StorageModel::kRow)
                    .ValueOrDie();
    Table* tb =
        db.catalog()
            .CreateTable("tb", ThreeColumnSchema(), StorageModel::kHybrid)
            .ValueOrDie();
    for (int i = 0; i < 4; ++i) {
      ASSERT_TRUE(db.Execute("INSERT INTO ta VALUES (" + std::to_string(i) +
                             ", 'a" + std::to_string(i) + "', 0.5)")
                      .ok());
      ASSERT_TRUE(db.Execute("INSERT INTO tb VALUES (" + std::to_string(i) +
                             ", 'b" + std::to_string(i) + "', 1.5)")
                      .ok());
    }
    db.pager().SyncWal();  // the durability barrier
    barrier_bytes = ReadFileBytes(pair.wal).size();
    states_a.push_back(rows_of(ta));
    states_b.push_back(rows_of(tb));
    auto sa = db.CreateSession();
    auto sb = db.CreateSession();
    auto drive = [&](Session* s, Table* t, const std::string& name, int base,
                     std::vector<std::vector<Row>>* states) {
      auto exec = [&](const std::string& sql) {
        auto r = s->Execute(sql);
        ASSERT_TRUE(r.ok()) << name << ": " << sql << " -> "
                            << r.status().ToString();
      };
      for (int txn = 0; txn < 4; ++txn) {
        int id = base + txn;
        exec("BEGIN");
        exec("INSERT INTO " + name + " VALUES (" + std::to_string(id) + ", '" +
             name + "-txn" + std::to_string(txn) + "', 2.5)");
        exec("UPDATE " + name + " SET txt = 'p" + std::to_string(id) +
             "' WHERE id = " + std::to_string(txn));
        if (txn == 2) {
          // One rolled-back tape entry: its bracket replays as a net no-op,
          // so it cuts no boundary.
          exec("ROLLBACK");
        } else {
          exec("COMMIT");
          // Every committed transaction net-adds a unique row, so the
          // boundary states are pairwise distinct and the first-match scan
          // below can only advance.
          states->push_back(rows_of(t));
        }
      }
      // Left open at the crash: must never surface at any cut.
      exec("BEGIN");
      exec("INSERT INTO " + name + " VALUES (" + std::to_string(base + 99) +
           ", 'open', 9.0)");
      exec("DELETE FROM " + name + " WHERE id = 0");
    };
    std::thread th_a([&] { drive(sa.get(), ta, "ta", 1000, &states_a); });
    std::thread th_b([&] { drive(sb.get(), tb, "tb", 2000, &states_b); });
    th_a.join();
    th_b.join();
    ASSERT_FALSE(::testing::Test::HasFailure());
    db.pager().CrashForTesting();  // both open brackets stay torn in the log
  }
  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytesIfAny(pair.spill);
  ASSERT_GT(wal_bytes.size(), barrier_bytes);

  size_t last_a = 0, last_b = 0;
  for (size_t len = barrier_bytes; len <= wal_bytes.size(); ++len) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    Database recovered(scratch.Options(/*cap=*/4));
    auto scan = [&](const char* name, std::vector<std::vector<Row>>& states,
                    size_t& last) {
      Table* t = recovered.catalog().GetTable(name).ValueOrDie();
      std::vector<Row> got = rows_of(t);
      size_t matched = states.size();
      for (size_t k = last; k < states.size(); ++k) {
        if (match(got, states[k])) {
          matched = k;
          break;
        }
      }
      ASSERT_LT(matched, states.size())
          << "cut at byte " << len << ": table " << name << " recovered "
          << got.size() << " rows matching none of its session's "
          << "committed-transaction boundaries";
      last = matched;
    };
    scan("ta", states_a, last_a);
    scan("tb", states_b, last_b);
    if (::testing::Test::HasFatalFailure()) return;
    recovered.pager().CrashForTesting();  // keep scratch for the next cut
  }
  EXPECT_EQ(last_a, states_a.size() - 1)
      << "the full log must recover every committed ta transaction";
  EXPECT_EQ(last_b, states_b.size() - 1)
      << "the full log must recover every committed tb transaction";
}

}  // namespace
}  // namespace dataspread
