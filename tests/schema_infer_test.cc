#include <gtest/gtest.h>

#include "core/schema_infer.h"

namespace dataspread {
namespace {

class SchemaInferTest : public ::testing::Test {
 protected:
  SchemaInferTest() : sheet_("S") {}

  void Fill(int64_t row, int64_t col, const std::string& input) {
    ASSERT_TRUE(sheet_.SetValue(row, col, Value::FromUserInput(input)).ok());
  }

  Result<InferredTable> Infer(const std::string& range,
                              HeaderMode mode = HeaderMode::kAuto) {
    return InferTableFromRange(sheet_, ParseRangeRef(range).value(), mode);
  }

  Sheet sheet_;
};

TEST_F(SchemaInferTest, HeaderAndTypesDetected) {
  Fill(0, 0, "id");
  Fill(0, 1, "name");
  Fill(0, 2, "score");
  Fill(1, 0, "1");
  Fill(1, 1, "ann");
  Fill(1, 2, "3.5");
  Fill(2, 0, "2");
  Fill(2, 1, "bob");
  Fill(2, 2, "4");
  InferredTable t = Infer("A1:C3").value();
  EXPECT_TRUE(t.has_header);
  EXPECT_EQ(t.schema.column(0).name, "id");
  EXPECT_EQ(t.schema.column(0).type, DataType::kInt);
  EXPECT_EQ(t.schema.column(1).type, DataType::kText);
  EXPECT_EQ(t.schema.column(2).type, DataType::kReal);  // 3.5 ∪ 4 → REAL
  ASSERT_EQ(t.rows.size(), 2u);
  EXPECT_EQ(t.rows[0][1], Value::Text("ann"));
}

TEST_F(SchemaInferTest, NoHeaderWhenFirstRowNumeric) {
  Fill(0, 0, "1");
  Fill(0, 1, "x");
  Fill(1, 0, "2");
  Fill(1, 1, "y");
  InferredTable t = Infer("A1:B2").value();
  EXPECT_FALSE(t.has_header);
  EXPECT_EQ(t.schema.column(0).name, "c1");
  EXPECT_EQ(t.schema.column(1).name, "c2");
  EXPECT_EQ(t.rows.size(), 2u);
}

TEST_F(SchemaInferTest, ForcedModes) {
  Fill(0, 0, "alpha");
  Fill(1, 0, "beta");
  // Auto with all-text rows treats the first row as header.
  EXPECT_TRUE(Infer("A1:A2").value().has_header);
  // Forced off keeps both rows as data.
  InferredTable t = Infer("A1:A2", HeaderMode::kNoHeader).value();
  EXPECT_FALSE(t.has_header);
  EXPECT_EQ(t.rows.size(), 2u);
  // Forced on even for a single row.
  t = Infer("A1", HeaderMode::kHeader).value();
  EXPECT_TRUE(t.has_header);
  EXPECT_EQ(t.rows.size(), 0u);
}

TEST_F(SchemaInferTest, HeaderSanitizationAndDedup) {
  Fill(0, 0, "my col!");
  Fill(0, 1, "my col?");
  Fill(0, 2, "2nd");
  Fill(1, 0, "1");
  Fill(1, 1, "2");
  Fill(1, 2, "3");
  InferredTable t = Infer("A1:C2").value();
  EXPECT_EQ(t.schema.column(0).name, "my_col_");
  EXPECT_EQ(t.schema.column(1).name, "my_col__2");  // uniquified
  EXPECT_EQ(t.schema.column(2).name, "c_2nd");      // leading digit
}

TEST_F(SchemaInferTest, MixedTypesWidenToText) {
  Fill(0, 0, "v");
  Fill(1, 0, "1");
  Fill(2, 0, "yes");
  InferredTable t = Infer("A1:A3").value();
  EXPECT_EQ(t.schema.column(0).type, DataType::kText);
}

TEST_F(SchemaInferTest, AllEmptyColumnDefaultsToText) {
  Fill(0, 0, "a");
  Fill(0, 1, "b");
  Fill(1, 0, "1");
  // B2 left empty.
  InferredTable t = Infer("A1:B2").value();
  EXPECT_EQ(t.schema.column(1).type, DataType::kText);
  EXPECT_TRUE(t.rows[0][1].is_null());
}

TEST_F(SchemaInferTest, ErrorCellsAbortExport) {
  Fill(0, 0, "h");
  ASSERT_TRUE(sheet_.SetValue(1, 0, Value::Error("#DIV/0!")).ok());
  auto r = Infer("A1:A2");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kTypeError);
}

TEST_F(SchemaInferTest, BoolColumns) {
  Fill(0, 0, "flag");
  Fill(1, 0, "true");
  Fill(2, 0, "false");
  InferredTable t = Infer("A1:A3").value();
  EXPECT_EQ(t.schema.column(0).type, DataType::kBool);
}

}  // namespace
}  // namespace dataspread
