#include <gtest/gtest.h>

#include "db/database.h"

namespace dataspread {
namespace {

class DatabaseTest : public ::testing::Test {
 protected:
  ResultSet Run(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }
  Database db_;
};

TEST_F(DatabaseTest, CreateInsertSelectRoundTrip) {
  ResultSet rs = Run("CREATE TABLE t (id INT PRIMARY KEY, name TEXT)");
  EXPECT_NE(rs.message.find("created"), std::string::npos);
  rs = Run("INSERT INTO t VALUES (1, 'a'), (2, 'b')");
  EXPECT_EQ(rs.affected_rows, 2u);
  rs = Run("SELECT * FROM t ORDER BY id");
  EXPECT_EQ(rs.num_rows(), 2u);
}

TEST_F(DatabaseTest, CreateIfNotExists) {
  Run("CREATE TABLE t (a INT)");
  EXPECT_FALSE(db_.Execute("CREATE TABLE t (a INT)").ok());
  EXPECT_TRUE(db_.Execute("CREATE TABLE IF NOT EXISTS t (a INT)").ok());
}

TEST_F(DatabaseTest, DropIfExists) {
  EXPECT_FALSE(db_.Execute("DROP TABLE ghost").ok());
  EXPECT_TRUE(db_.Execute("DROP TABLE IF EXISTS ghost").ok());
  Run("CREATE TABLE t (a INT)");
  Run("DROP TABLE t");
  EXPECT_FALSE(db_.catalog().HasTable("t"));
}

TEST_F(DatabaseTest, InsertColumnSubsetFillsNulls) {
  Run("CREATE TABLE t (a INT, b TEXT, c REAL)");
  Run("INSERT INTO t (c, a) VALUES (1.5, 7)");
  ResultSet rs = Run("SELECT a, b, c FROM t");
  EXPECT_EQ(rs.rows[0][0], Value::Int(7));
  EXPECT_TRUE(rs.rows[0][1].is_null());
  EXPECT_EQ(rs.rows[0][2], Value::Real(1.5));
}

TEST_F(DatabaseTest, InsertAtomicityOnPkViolation) {
  Run("CREATE TABLE t (id INT PRIMARY KEY)");
  Run("INSERT INTO t VALUES (1)");
  // Second row collides; the whole statement must roll back.
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (2), (1), (3)").ok());
  EXPECT_EQ(Run("SELECT * FROM t").num_rows(), 1u);
}

TEST_F(DatabaseTest, InsertSelect) {
  Run("CREATE TABLE src (a INT)");
  Run("INSERT INTO src VALUES (1), (2), (3)");
  Run("CREATE TABLE dst (a INT)");
  ResultSet rs = Run("INSERT INTO dst SELECT a * 10 FROM src WHERE a > 1");
  EXPECT_EQ(rs.affected_rows, 2u);
  rs = Run("SELECT a FROM dst ORDER BY a");
  EXPECT_EQ(rs.rows[0][0], Value::Int(20));
}

TEST_F(DatabaseTest, UpdateWithExpressionsAndWhere) {
  Run("CREATE TABLE t (id INT PRIMARY KEY, n INT)");
  Run("INSERT INTO t VALUES (1, 10), (2, 20), (3, 30)");
  ResultSet rs = Run("UPDATE t SET n = n + 1 WHERE n >= 20");
  EXPECT_EQ(rs.affected_rows, 2u);
  rs = Run("SELECT n FROM t ORDER BY id");
  EXPECT_EQ(rs.rows[0][0], Value::Int(10));
  EXPECT_EQ(rs.rows[1][0], Value::Int(21));
  EXPECT_EQ(rs.rows[2][0], Value::Int(31));
}

TEST_F(DatabaseTest, UpdateRollsBackOnPkViolation) {
  Run("CREATE TABLE t (id INT PRIMARY KEY, n INT)");
  Run("INSERT INTO t VALUES (1, 10), (2, 20)");
  // Setting every id to 5 collides on the second row; first must roll back.
  EXPECT_FALSE(db_.Execute("UPDATE t SET id = 5").ok());
  ResultSet rs = Run("SELECT id FROM t ORDER BY id");
  EXPECT_EQ(rs.rows[0][0], Value::Int(1));
  EXPECT_EQ(rs.rows[1][0], Value::Int(2));
}

TEST_F(DatabaseTest, DeleteWithAndWithoutWhere) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2), (3), (4)");
  EXPECT_EQ(Run("DELETE FROM t WHERE a % 2 = 0").affected_rows, 2u);
  EXPECT_EQ(Run("SELECT * FROM t").num_rows(), 2u);
  EXPECT_EQ(Run("DELETE FROM t").affected_rows, 2u);
  EXPECT_EQ(Run("SELECT * FROM t").num_rows(), 0u);
}

TEST_F(DatabaseTest, AlterTableLifecycle) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2)");
  Run("ALTER TABLE t ADD COLUMN b TEXT DEFAULT 'x'");
  ResultSet rs = Run("SELECT b FROM t");
  EXPECT_EQ(rs.rows[0][0], Value::Text("x"));
  Run("ALTER TABLE t RENAME COLUMN b TO label");
  rs = Run("SELECT label FROM t");
  EXPECT_EQ(rs.num_rows(), 2u);
  Run("ALTER TABLE t DROP COLUMN a");
  rs = Run("SELECT * FROM t");
  EXPECT_EQ(rs.columns, std::vector<std::string>{"label"});
}

TEST_F(DatabaseTest, ChangeListenersFireAndDetach) {
  std::vector<std::string> log;
  int token = db_.AddChangeListener(
      [&](const std::string& table, const TableChange& change) {
        log.push_back(table + "/" + std::to_string(static_cast<int>(change.kind)));
      });
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1)");
  Run("UPDATE t SET a = 2");
  Run("DELETE FROM t");
  Run("ALTER TABLE t ADD COLUMN b INT");
  ASSERT_EQ(log.size(), 4u);  // insert, update, delete, schema
  db_.RemoveChangeListener(token);
  Run("INSERT INTO t VALUES (1, 2)");
  EXPECT_EQ(log.size(), 4u);
}

TEST_F(DatabaseTest, StatementCounter) {
  uint64_t before = db_.statements_executed();
  Run("CREATE TABLE t (a INT)");
  Run("SELECT * FROM t");
  EXPECT_EQ(db_.statements_executed(), before + 2);
}

TEST_F(DatabaseTest, RangeConstructsRequireResolver) {
  Run("CREATE TABLE t (a INT)");
  auto r = db_.Execute("SELECT * FROM t WHERE a = RANGEVALUE(A1)");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  r = db_.Execute("SELECT * FROM RANGETABLE(A1:B2)");
  ASSERT_FALSE(r.ok());
}

}  // namespace
}  // namespace dataspread
