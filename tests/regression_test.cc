#include <gtest/gtest.h>

#include "core/dataspread.h"

namespace dataspread {
namespace {

/// Distinct corner cases discovered while exercising the full system; each
/// test pins one behaviour that is easy to regress.
class RegressionTest : public ::testing::Test {
 protected:
  ResultSet Run(const std::string& sql) {
    auto r = ds_.Sql(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }
  DataSpread ds_;
};

TEST_F(RegressionTest, SelfJoinWithAliases) {
  Run("CREATE TABLE emp (id INT PRIMARY KEY, boss INT, name TEXT)");
  Run("INSERT INTO emp VALUES (1, NULL, 'root'), (2, 1, 'ann'), (3, 1, 'bob'),"
      " (4, 2, 'cat')");
  ResultSet rs = Run(
      "SELECT e.name, b.name AS boss_name FROM emp e JOIN emp b "
      "ON e.boss = b.id ORDER BY e.id");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("ann"));
  EXPECT_EQ(rs.rows[0][1], Value::Text("root"));
  EXPECT_EQ(rs.rows[2][1], Value::Text("ann"));
}

TEST_F(RegressionTest, ThreeWayNaturalJoinSharedColumnChain) {
  Run("CREATE TABLE a (k INT, x INT)");
  Run("CREATE TABLE b (k INT, y INT)");
  Run("CREATE TABLE c (y INT, z INT)");
  Run("INSERT INTO a VALUES (1, 10)");
  Run("INSERT INTO b VALUES (1, 20)");
  Run("INSERT INTO c VALUES (20, 30)");
  ResultSet rs = Run("SELECT * FROM a NATURAL JOIN b NATURAL JOIN c");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"k", "x", "y", "z"}));
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][3], Value::Int(30));
}

TEST_F(RegressionTest, OrderByPutsNullsFirst) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (2), (NULL), (1)");
  ResultSet rs = Run("SELECT a FROM t ORDER BY a");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_TRUE(rs.rows[0][0].is_null());  // NULL ranks lowest in the order
  EXPECT_EQ(rs.rows[1][0], Value::Int(1));
  // And last under DESC.
  rs = Run("SELECT a FROM t ORDER BY a DESC");
  EXPECT_TRUE(rs.rows[2][0].is_null());
}

TEST_F(RegressionTest, LimitZeroAndHugeOffset) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2), (3)");
  EXPECT_EQ(Run("SELECT * FROM t LIMIT 0").num_rows(), 0u);
  EXPECT_EQ(Run("SELECT * FROM t LIMIT 10 OFFSET 100").num_rows(), 0u);
  EXPECT_EQ(Run("SELECT * FROM t OFFSET 2").num_rows(), 1u);
}

TEST_F(RegressionTest, HavingWithoutGroupByActsOnGlobalGroup) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2)");
  EXPECT_EQ(Run("SELECT SUM(a) FROM t HAVING COUNT(*) > 1").num_rows(), 1u);
  EXPECT_EQ(Run("SELECT SUM(a) FROM t HAVING COUNT(*) > 5").num_rows(), 0u);
}

TEST_F(RegressionTest, DistinctOnExpressions) {
  Run("CREATE TABLE t (a INT)");
  Run("INSERT INTO t VALUES (1), (2), (3), (4)");
  ResultSet rs = Run("SELECT DISTINCT a % 2 FROM t ORDER BY 1");
  ASSERT_EQ(rs.num_rows(), 2u);
}

TEST_F(RegressionTest, CaseWithoutElseYieldsNull) {
  ResultSet rs = Run("SELECT CASE WHEN 1 = 2 THEN 'x' END");
  EXPECT_TRUE(rs.rows[0][0].is_null());
}

TEST_F(RegressionTest, UpdatePkViaFastPathRepointsKey) {
  Run("CREATE TABLE t (id INT PRIMARY KEY, v INT)");
  Run("INSERT INTO t VALUES (1, 10)");
  // PK change through the keyed fast path must keep the index coherent.
  EXPECT_EQ(Run("UPDATE t SET id = 9 WHERE id = 1").affected_rows, 1u);
  EXPECT_EQ(Run("SELECT v FROM t WHERE id = 9").num_rows(), 1u);
  EXPECT_EQ(Run("SELECT v FROM t WHERE id = 1").num_rows(), 0u);
  // Key not present: zero rows, no error.
  EXPECT_EQ(Run("UPDATE t SET v = 0 WHERE id = 777").affected_rows, 0u);
}

TEST_F(RegressionTest, InsertSelectRespectsColumnList) {
  Run("CREATE TABLE src (a INT, b TEXT)");
  Run("INSERT INTO src VALUES (1, 'x')");
  Run("CREATE TABLE dst (p TEXT, q INT, r REAL)");
  Run("INSERT INTO dst (q, p) SELECT a, b FROM src");
  ResultSet rs = Run("SELECT p, q, r FROM dst");
  EXPECT_EQ(rs.rows[0][0], Value::Text("x"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(1));
  EXPECT_TRUE(rs.rows[0][2].is_null());
}

class SheetRegressionTest : public ::testing::Test {
 protected:
  SheetRegressionTest() { sheet_ = ds_.AddSheet("S").ValueOrDie(); }
  void Put(int64_t r, int64_t c, const std::string& v) {
    ASSERT_TRUE(ds_.SetCellAt(sheet_, r, c, v).ok());
  }
  DataSpread ds_;
  Sheet* sheet_;
};

TEST_F(SheetRegressionTest, ColumnInsertAdjustsFormulaText) {
  Put(0, 0, "5");        // A1
  Put(0, 3, "=A1*2");    // D1
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 3), Value::Int(10));
  ASSERT_TRUE(ds_.InsertCols("S", 0, 2).ok());
  // Both the data and the formula moved right; the reference follows.
  EXPECT_EQ(sheet_->GetCell(0, 5)->formula, "=C1*2");
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 5), Value::Int(10));
  Put(0, 2, "7");
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 5), Value::Int(14));
}

TEST_F(SheetRegressionTest, ColumnDeleteProducesRefError) {
  Put(0, 1, "3");       // B1
  Put(0, 4, "=B1+1");   // E1
  ASSERT_TRUE(ds_.DeleteCols("S", 1, 1).ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 3), Value::Error("#REF!"));
}

TEST_F(SheetRegressionTest, AbsoluteAnchorsSurviveAdjustment) {
  Put(4, 0, "9");          // A5
  Put(0, 1, "=$A$5");      // B1, fully anchored
  ASSERT_TRUE(ds_.InsertRows("S", 1, 2).ok());
  // $ anchors mark copy/paste behaviour, not immunity to structural shifts:
  // the referenced *cell* moved, so the reference follows it.
  EXPECT_EQ(sheet_->GetCell(0, 1)->formula, "=$A$7");
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 1), Value::Int(9));
}

TEST_F(SheetRegressionTest, TwoBindingsOnOneTableBothRefresh) {
  ASSERT_TRUE(ds_.Sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO t VALUES (1, 10)").ok());
  Sheet* other = ds_.AddSheet("S2").ValueOrDie();
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "t").ok());
  ASSERT_TRUE(ds_.ImportTable("S2", "A1", "t").ok());
  ASSERT_TRUE(ds_.Sql("UPDATE t SET v = 42 WHERE id = 1").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 1), Value::Int(42));
  EXPECT_EQ(ds_.GetValueAt(other, 1, 1), Value::Int(42));
  // An edit through one binding reaches the other.
  ASSERT_TRUE(ds_.SetCellAt(other, 1, 1, "77").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 1), Value::Int(77));
}

TEST_F(SheetRegressionTest, DroppingBoundTableColumnShrinksRegion) {
  ASSERT_TRUE(ds_.Sql("CREATE TABLE t (id INT PRIMARY KEY, v INT, w INT)")
                  .ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO t VALUES (1, 10, 100)").ok());
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "t").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 2), Value::Int(100));
  ASSERT_TRUE(ds_.Sql("ALTER TABLE t DROP COLUMN v").ok());
  // The region narrows; edits at the old width are plain cells now.
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 1), Value::Int(100));
  auto* binding = ds_.interface_manager().FindBindingAt(sheet_, 1, 2);
  EXPECT_EQ(binding, nullptr);
}

TEST_F(SheetRegressionTest, DbsqlOverEmptyRangeTable) {
  Put(0, 0, "h1");
  Put(0, 1, "h2");
  // Header-only range: zero data rows, but a valid relation.
  Put(0, 3, "=DBSQL(\"SELECT COUNT(*) FROM RANGETABLE(A1:B1)\")");
  // A single all-text row is data (no second row to prove it is a header).
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 3), Value::Int(1));
}

TEST_F(SheetRegressionTest, CrossSheetDbsqlRangeTable) {
  Sheet* data = ds_.AddSheet("Data").ValueOrDie();
  ASSERT_TRUE(ds_.SetCellAt(data, 0, 0, "n").ok());
  ASSERT_TRUE(ds_.SetCellAt(data, 1, 0, "4").ok());
  ASSERT_TRUE(ds_.SetCellAt(data, 2, 0, "6").ok());
  Put(0, 0, "=DBSQL(\"SELECT SUM(n) FROM RANGETABLE(Data!A1:A3)\")");
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Int(10));
  // Cross-sheet dependency: editing Data re-runs the query.
  ASSERT_TRUE(ds_.SetCellAt(data, 2, 0, "16").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Int(20));
}

TEST_F(SheetRegressionTest, FormulaOnBindingEdgeIsAllowedOutside) {
  ASSERT_TRUE(ds_.Sql("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO t VALUES (1)").ok());
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "t").ok());
  // One column wide, two rows tall (header + 1): C1 is outside the region.
  EXPECT_TRUE(ds_.SetCellAt(sheet_, 0, 2, "=1+1").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 2), Value::Int(2));
}

}  // namespace
}  // namespace dataspread
