#include <gtest/gtest.h>

#include "sql/lexer.h"
#include "sql/parser.h"

namespace dataspread::sql {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Tokenize("SELECT a, 42, 4.5, 'it''s' FROM t;").value();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kIdent);
  EXPECT_EQ(tokens[0].text, "SELECT");
  EXPECT_EQ(tokens[3].kind, TokenKind::kInt);
  EXPECT_EQ(tokens[3].int_value, 42);
  EXPECT_EQ(tokens[5].kind, TokenKind::kReal);
  EXPECT_DOUBLE_EQ(tokens[5].real_value, 4.5);
  EXPECT_EQ(tokens[7].kind, TokenKind::kString);
  EXPECT_EQ(tokens[7].text, "it's");
}

TEST(LexerTest, TwoCharSymbols) {
  auto tokens = Tokenize("a <= b <> c || d != e >= f").value();
  std::vector<std::string> symbols;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kSymbol) symbols.push_back(t.text);
  }
  EXPECT_EQ(symbols, (std::vector<std::string>{"<=", "<>", "||", "!=", ">="}));
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Tokenize("SELECT 1 -- trailing comment\n , 2").value();
  size_t ints = 0;
  for (const Token& t : tokens) {
    if (t.kind == TokenKind::kInt) ++ints;
  }
  EXPECT_EQ(ints, 2u);
}

TEST(LexerTest, Errors) {
  EXPECT_FALSE(Tokenize("SELECT 'unterminated").ok());
  EXPECT_FALSE(Tokenize("SELECT @").ok());
}

SelectStmt ParseSelectOrDie(std::string_view sql) {
  auto stmt = Parse(sql);
  EXPECT_TRUE(stmt.ok()) << stmt.status().ToString() << " for " << sql;
  return std::move(std::get<SelectStmt>(stmt.value()));
}

TEST(ParserTest, MinimalSelect) {
  SelectStmt s = ParseSelectOrDie("SELECT * FROM movies");
  ASSERT_EQ(s.items.size(), 1u);
  EXPECT_TRUE(s.items[0].star);
  ASSERT_TRUE(s.from.has_value());
  EXPECT_EQ(s.from->name, "movies");
}

TEST(ParserTest, SelectListWithAliases) {
  SelectStmt s = ParseSelectOrDie("SELECT a AS x, b y, t.c, t.* FROM t");
  ASSERT_EQ(s.items.size(), 4u);
  EXPECT_EQ(s.items[0].alias, "x");
  EXPECT_EQ(s.items[1].alias, "y");
  EXPECT_EQ(s.items[2].expr->qualifier, "t");
  EXPECT_TRUE(s.items[3].star);
  EXPECT_EQ(s.items[3].star_qualifier, "t");
}

TEST(ParserTest, JoinVariants) {
  SelectStmt s = ParseSelectOrDie(
      "SELECT * FROM a JOIN b ON a.x = b.x LEFT JOIN c ON b.y = c.y "
      "NATURAL JOIN d CROSS JOIN e, f");
  ASSERT_EQ(s.joins.size(), 5u);
  EXPECT_EQ(s.joins[0].type, JoinType::kInner);
  EXPECT_EQ(s.joins[1].type, JoinType::kLeft);
  EXPECT_EQ(s.joins[2].type, JoinType::kNatural);
  EXPECT_EQ(s.joins[3].type, JoinType::kCross);
  EXPECT_EQ(s.joins[4].type, JoinType::kCross);
  EXPECT_NE(s.joins[0].on, nullptr);
  EXPECT_EQ(s.joins[2].on, nullptr);
}

TEST(ParserTest, WhereGroupHavingOrderLimit) {
  SelectStmt s = ParseSelectOrDie(
      "SELECT dept, AVG(salary) a FROM emp WHERE salary > 100 "
      "GROUP BY dept HAVING COUNT(*) > 2 ORDER BY a DESC, dept "
      "LIMIT 10 OFFSET 5");
  EXPECT_NE(s.where, nullptr);
  ASSERT_EQ(s.group_by.size(), 1u);
  EXPECT_NE(s.having, nullptr);
  ASSERT_EQ(s.order_by.size(), 2u);
  EXPECT_TRUE(s.order_by[0].descending);
  EXPECT_FALSE(s.order_by[1].descending);
  EXPECT_EQ(s.limit.value_or(-1), 10);
  EXPECT_EQ(s.offset.value_or(-1), 5);
}

TEST(ParserTest, ExpressionPrecedence) {
  SelectStmt s = ParseSelectOrDie("SELECT 1 + 2 * 3 = 7 AND NOT FALSE");
  // ((1 + (2*3)) = 7) AND (NOT FALSE)
  EXPECT_EQ(s.items[0].expr->ToString(),
            "(((1 + (2 * 3)) = 7) AND (NOT FALSE))");
}

TEST(ParserTest, BetweenDesugarsToRange) {
  SelectStmt s = ParseSelectOrDie("SELECT * FROM t WHERE a BETWEEN 1 AND 5");
  EXPECT_EQ(s.where->ToString(), "((a >= 1) AND (a <= 5))");
}

TEST(ParserTest, InListAndIsNull) {
  SelectStmt s = ParseSelectOrDie(
      "SELECT * FROM t WHERE a IN (1, 2, 3) AND b IS NOT NULL AND c NOT IN (4)");
  std::string text = s.where->ToString();
  EXPECT_NE(text.find("IN"), std::string::npos);
  EXPECT_NE(text.find("IS NOT NULL"), std::string::npos);
  EXPECT_NE(text.find("NOT IN"), std::string::npos);
}

TEST(ParserTest, CaseWhen) {
  SelectStmt s = ParseSelectOrDie(
      "SELECT CASE WHEN a > 1 THEN 'big' ELSE 'small' END FROM t");
  EXPECT_EQ(s.items[0].expr->kind, ExprKind::kCase);
  ASSERT_EQ(s.items[0].expr->args.size(), 3u);
}

TEST(ParserTest, RangeValueConstruct) {
  SelectStmt s = ParseSelectOrDie(
      "SELECT * FROM actors WHERE actorid = RANGEVALUE(A1)");
  const Expr* cmp = s.where.get();
  ASSERT_EQ(cmp->args.size(), 2u);
  EXPECT_EQ(cmp->args[1]->kind, ExprKind::kRangeValue);
  EXPECT_EQ(cmp->args[1]->ref_text, "A1");
}

TEST(ParserTest, RangeValueSheetQualified) {
  SelectStmt s =
      ParseSelectOrDie("SELECT RANGEVALUE(Sheet2!B3), RANGEVALUE('C4')");
  EXPECT_EQ(s.items[0].expr->ref_text, "Sheet2!B3");
  EXPECT_EQ(s.items[1].expr->ref_text, "C4");
}

TEST(ParserTest, RangeTableInFrom) {
  SelectStmt s = ParseSelectOrDie(
      "SELECT * FROM actors NATURAL JOIN RANGETABLE(A1:D100) r");
  ASSERT_EQ(s.joins.size(), 1u);
  EXPECT_EQ(s.joins[0].table.kind, TableRef::Kind::kRangeTable);
  EXPECT_EQ(s.joins[0].table.range_text, "A1:D100");
  EXPECT_EQ(s.joins[0].table.alias, "r");
}

TEST(ParserTest, RangeTableNotAnExpression) {
  EXPECT_FALSE(Parse("SELECT RANGETABLE(A1:B2)").ok());
}

TEST(ParserTest, InsertValues) {
  auto stmt = Parse("INSERT INTO t (a, b) VALUES (1, 'x'), (2, 'y')").value();
  auto& ins = std::get<InsertStmt>(stmt);
  EXPECT_EQ(ins.table, "t");
  EXPECT_EQ(ins.columns, (std::vector<std::string>{"a", "b"}));
  ASSERT_EQ(ins.values.size(), 2u);
  ASSERT_EQ(ins.values[0].size(), 2u);
}

TEST(ParserTest, InsertSelect) {
  auto stmt = Parse("INSERT INTO t SELECT * FROM s WHERE x > 0").value();
  auto& ins = std::get<InsertStmt>(stmt);
  EXPECT_NE(ins.select, nullptr);
}

TEST(ParserTest, UpdateDelete) {
  auto upd = Parse("UPDATE t SET a = a + 1, b = 'x' WHERE id = 3").value();
  auto& u = std::get<UpdateStmt>(upd);
  ASSERT_EQ(u.assignments.size(), 2u);
  EXPECT_NE(u.where, nullptr);
  auto del = Parse("DELETE FROM t").value();
  EXPECT_EQ(std::get<DeleteStmt>(del).where, nullptr);
}

TEST(ParserTest, CreateDropAlter) {
  auto create = Parse(
      "CREATE TABLE IF NOT EXISTS m (id INT PRIMARY KEY, title TEXT, "
      "score REAL)").value();
  auto& c = std::get<CreateTableStmt>(create);
  EXPECT_TRUE(c.if_not_exists);
  ASSERT_EQ(c.columns.size(), 3u);
  EXPECT_TRUE(c.columns[0].primary_key);
  EXPECT_EQ(c.columns[2].type, dataspread::DataType::kReal);

  auto drop = Parse("DROP TABLE IF EXISTS m").value();
  EXPECT_TRUE(std::get<DropTableStmt>(drop).if_exists);

  auto add = Parse("ALTER TABLE m ADD COLUMN genre TEXT DEFAULT 'none'").value();
  auto& a = std::get<AlterTableStmt>(add);
  EXPECT_EQ(a.action, AlterTableStmt::Action::kAddColumn);
  EXPECT_NE(a.default_value, nullptr);

  auto ren = Parse("ALTER TABLE m RENAME COLUMN genre TO g").value();
  EXPECT_EQ(std::get<AlterTableStmt>(ren).action,
            AlterTableStmt::Action::kRenameColumn);
}

TEST(ParserTest, ErrorsAreParseErrors) {
  for (const char* bad :
       {"", "SELEKT 1", "SELECT FROM", "SELECT * FROM", "INSERT t VALUES (1)",
        "SELECT * FROM t WHERE", "SELECT 1 2", "CREATE TABLE t (a BLOB)",
        "UPDATE t SET", "SELECT * FROM t LIMIT x"}) {
    EXPECT_FALSE(Parse(bad).ok()) << bad;
  }
}

TEST(ParserTest, TrailingSemicolonAccepted) {
  EXPECT_TRUE(Parse("SELECT 1;").ok());
  EXPECT_FALSE(Parse("SELECT 1; SELECT 2").ok());
}

TEST(ParserTest, ExprCloneIsDeep) {
  SelectStmt s = ParseSelectOrDie("SELECT a + b * 2 FROM t");
  ExprPtr clone = s.items[0].expr->Clone();
  EXPECT_EQ(clone->ToString(), s.items[0].expr->ToString());
  EXPECT_NE(clone.get(), s.items[0].expr.get());
  EXPECT_NE(clone->args[0].get(), s.items[0].expr->args[0].get());
}

TEST(ParserTest, AggregateDetection) {
  SelectStmt s = ParseSelectOrDie("SELECT SUM(a) + 1, b FROM t");
  EXPECT_TRUE(ContainsAggregate(*s.items[0].expr));
  EXPECT_FALSE(ContainsAggregate(*s.items[1].expr));
}

}  // namespace
}  // namespace dataspread::sql
