#include <gtest/gtest.h>

#include <random>

#include "index/offset_array.h"
#include "index/positional_index.h"

namespace dataspread {
namespace {

TEST(PositionalIndexTest, EmptyIndex) {
  PositionalIndex idx;
  EXPECT_EQ(idx.size(), 0u);
  EXPECT_TRUE(idx.empty());
  EXPECT_FALSE(idx.Get(0).ok());
  EXPECT_FALSE(idx.EraseAt(0).ok());
  EXPECT_EQ(idx.height(), 1u);
}

TEST(PositionalIndexTest, PushBackAndGet) {
  PositionalIndex idx;
  for (uint64_t i = 0; i < 1000; ++i) idx.PushBack(i * 10);
  EXPECT_EQ(idx.size(), 1000u);
  for (uint64_t i = 0; i < 1000; ++i) {
    ASSERT_EQ(idx.Get(i).value(), i * 10) << i;
  }
  EXPECT_FALSE(idx.Get(1000).ok());
}

TEST(PositionalIndexTest, InsertAtFront) {
  PositionalIndex idx;
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_TRUE(idx.InsertAt(0, i).ok());
  }
  // Values come back reversed.
  for (uint64_t i = 0; i < 300; ++i) {
    ASSERT_EQ(idx.Get(i).value(), 299 - i);
  }
}

TEST(PositionalIndexTest, InsertInMiddle) {
  PositionalIndex idx;
  idx.PushBack(1);
  idx.PushBack(3);
  ASSERT_TRUE(idx.InsertAt(1, 2).ok());
  EXPECT_EQ(idx.Get(0).value(), 1u);
  EXPECT_EQ(idx.Get(1).value(), 2u);
  EXPECT_EQ(idx.Get(2).value(), 3u);
  EXPECT_FALSE(idx.InsertAt(7, 9).ok());
}

TEST(PositionalIndexTest, EraseReturnsPayloadAndShifts) {
  PositionalIndex idx;
  for (uint64_t i = 0; i < 10; ++i) idx.PushBack(i);
  EXPECT_EQ(idx.EraseAt(3).value(), 3u);
  EXPECT_EQ(idx.size(), 9u);
  EXPECT_EQ(idx.Get(3).value(), 4u);
  EXPECT_EQ(idx.Get(8).value(), 9u);
}

TEST(PositionalIndexTest, SetReplacesPayload) {
  PositionalIndex idx;
  idx.PushBack(1);
  idx.PushBack(2);
  ASSERT_TRUE(idx.Set(1, 99).ok());
  EXPECT_EQ(idx.Get(1).value(), 99u);
  EXPECT_FALSE(idx.Set(5, 0).ok());
}

TEST(PositionalIndexTest, BuildBulkLoads) {
  std::vector<uint64_t> payloads(100000);
  for (size_t i = 0; i < payloads.size(); ++i) payloads[i] = i * 3;
  PositionalIndex idx;
  idx.Build(payloads);
  EXPECT_EQ(idx.size(), payloads.size());
  EXPECT_EQ(idx.Get(0).value(), 0u);
  EXPECT_EQ(idx.Get(99999).value(), 99999u * 3);
  EXPECT_EQ(idx.Get(4242).value(), 4242u * 3);
}

TEST(PositionalIndexTest, HeightIsLogarithmic) {
  std::vector<uint64_t> payloads(1u << 20);
  for (size_t i = 0; i < payloads.size(); ++i) payloads[i] = i;
  PositionalIndex idx;
  idx.Build(payloads);
  // fanout ~32 over 1M leaves of ~48: expect height ≤ 6.
  EXPECT_LE(idx.height(), 6u);
}

TEST(PositionalIndexTest, VisitRange) {
  PositionalIndex idx;
  for (uint64_t i = 0; i < 10000; ++i) idx.PushBack(i);
  std::vector<uint64_t> seen;
  idx.Visit(5000, 100, [&](size_t pos, uint64_t v) {
    EXPECT_EQ(pos, v);
    seen.push_back(v);
  });
  ASSERT_EQ(seen.size(), 100u);
  EXPECT_EQ(seen.front(), 5000u);
  EXPECT_EQ(seen.back(), 5099u);
  // Clipped at the end.
  EXPECT_EQ(idx.GetRange(9990, 100).size(), 10u);
  // Out of range.
  EXPECT_TRUE(idx.GetRange(20000, 5).empty());
}

TEST(PositionalIndexTest, ClearResets) {
  PositionalIndex idx;
  for (uint64_t i = 0; i < 500; ++i) idx.PushBack(i);
  idx.Clear();
  EXPECT_EQ(idx.size(), 0u);
  idx.PushBack(7);
  EXPECT_EQ(idx.Get(0).value(), 7u);
}

TEST(PositionalIndexTest, MoveSemantics) {
  PositionalIndex a;
  a.PushBack(1);
  a.PushBack(2);
  PositionalIndex b = std::move(a);
  EXPECT_EQ(b.size(), 2u);
  EXPECT_EQ(b.Get(1).value(), 2u);
}

/// Property test: the counted B+-tree behaves exactly like the shifting
/// array baseline under a random operation mix (parameterized by seed).
class PositionalIndexPropertyTest : public ::testing::TestWithParam<uint32_t> {
};

TEST_P(PositionalIndexPropertyTest, MatchesOffsetArrayReference) {
  PositionalIndex tree;
  OffsetArray reference;
  std::mt19937 rng(GetParam());
  for (int step = 0; step < 4000; ++step) {
    int action = static_cast<int>(rng() % 100);
    if (action < 50 || reference.size() == 0) {
      size_t pos = rng() % (reference.size() + 1);
      uint64_t payload = rng();
      ASSERT_TRUE(tree.InsertAt(pos, payload).ok());
      ASSERT_TRUE(reference.InsertAt(pos, payload).ok());
    } else if (action < 75) {
      size_t pos = rng() % reference.size();
      ASSERT_EQ(tree.EraseAt(pos).value(), reference.EraseAt(pos).value());
    } else if (action < 90) {
      size_t pos = rng() % reference.size();
      ASSERT_EQ(tree.Get(pos).value(), reference.Get(pos).value());
    } else {
      size_t pos = rng() % reference.size();
      uint64_t payload = rng();
      ASSERT_TRUE(tree.Set(pos, payload).ok());
      ASSERT_TRUE(reference.Set(pos, payload).ok());
    }
    ASSERT_EQ(tree.size(), reference.size());
  }
  // Full-content equality at the end.
  std::vector<uint64_t> tree_all = tree.GetRange(0, tree.size());
  std::vector<uint64_t> ref_all = reference.GetRange(0, reference.size());
  EXPECT_EQ(tree_all, ref_all);
}

INSTANTIATE_TEST_SUITE_P(Seeds, PositionalIndexPropertyTest,
                         ::testing::Values(1u, 7u, 13u, 99u, 2024u));

TEST(OffsetArrayTest, BasicParity) {
  OffsetArray arr;
  arr.PushBack(5);
  ASSERT_TRUE(arr.InsertAt(0, 4).ok());
  EXPECT_EQ(arr.Get(0).value(), 4u);
  EXPECT_EQ(arr.EraseAt(1).value(), 5u);
  EXPECT_EQ(arr.size(), 1u);
  EXPECT_FALSE(arr.Get(9).ok());
}

}  // namespace
}  // namespace dataspread
