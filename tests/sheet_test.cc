#include <gtest/gtest.h>

#include "sheet/sheet.h"
#include "sheet/workbook.h"

namespace dataspread {
namespace {

TEST(SheetTest, EmptySheet) {
  Sheet s("S");
  EXPECT_EQ(s.cell_count(), 0u);
  EXPECT_EQ(s.GetCell(0, 0), nullptr);
  EXPECT_TRUE(s.GetValue(5, 5).is_null());
  EXPECT_EQ(s.UsedExtent(), (std::pair<int64_t, int64_t>{0, 0}));
}

TEST(SheetTest, SetAndGetValues) {
  Sheet s("S");
  ASSERT_TRUE(s.SetValue(1, 2, Value::Int(42)).ok());
  EXPECT_EQ(s.GetValue(1, 2), Value::Int(42));
  EXPECT_EQ(s.cell_count(), 1u);
  ASSERT_TRUE(s.SetValue(1, 2, Value::Text("x")).ok());
  EXPECT_EQ(s.GetValue(1, 2), Value::Text("x"));
  EXPECT_EQ(s.cell_count(), 1u);
  ASSERT_TRUE(s.ClearCell(1, 2).ok());
  EXPECT_EQ(s.cell_count(), 0u);
  EXPECT_TRUE(s.GetValue(1, 2).is_null());
}

TEST(SheetTest, SettingNullClears) {
  Sheet s("S");
  ASSERT_TRUE(s.SetValue(0, 0, Value::Int(1)).ok());
  ASSERT_TRUE(s.SetValue(0, 0, Value::Null()).ok());
  EXPECT_EQ(s.cell_count(), 0u);
}

TEST(SheetTest, AutoGrowsBeyondInitialExtent) {
  Sheet s("S", 4, 4);
  EXPECT_EQ(s.num_rows(), 4);
  ASSERT_TRUE(s.SetValue(1000, 100, Value::Int(1)).ok());
  EXPECT_GE(s.num_rows(), 1001);
  EXPECT_GE(s.num_cols(), 101);
  EXPECT_EQ(s.GetValue(1000, 100), Value::Int(1));
  EXPECT_FALSE(s.SetValue(-1, 0, Value::Int(1)).ok());
}

TEST(SheetTest, FormulaTextStored) {
  Sheet s("S");
  ASSERT_TRUE(s.SetFormula(0, 0, "=1+2").ok());
  const Cell* cell = s.GetCell(0, 0);
  ASSERT_NE(cell, nullptr);
  EXPECT_TRUE(cell->has_formula());
  EXPECT_EQ(cell->formula, "=1+2");
  EXPECT_FALSE(s.SetFormula(0, 1, "1+2").ok());  // must start with '='
  ASSERT_TRUE(s.SetComputedValue(0, 0, Value::Int(3)).ok());
  EXPECT_EQ(s.GetValue(0, 0), Value::Int(3));
  EXPECT_EQ(s.GetCell(0, 0)->formula, "=1+2");  // preserved
  // Plain SetValue clears the formula.
  ASSERT_TRUE(s.SetValue(0, 0, Value::Int(9)).ok());
  EXPECT_FALSE(s.GetCell(0, 0)->has_formula());
}

TEST(SheetTest, UsedExtentTracksOccupancy) {
  Sheet s("S");
  ASSERT_TRUE(s.SetValue(3, 7, Value::Int(1)).ok());
  ASSERT_TRUE(s.SetValue(10, 2, Value::Int(2)).ok());
  EXPECT_EQ(s.UsedExtent(), (std::pair<int64_t, int64_t>{11, 8}));
  ASSERT_TRUE(s.ClearCell(10, 2).ok());
  EXPECT_EQ(s.UsedExtent(), (std::pair<int64_t, int64_t>{4, 8}));
}

TEST(SheetTest, VisitRangeOnlyOccupied) {
  Sheet s("S");
  ASSERT_TRUE(s.SetValue(0, 0, Value::Int(1)).ok());
  ASSERT_TRUE(s.SetValue(2, 2, Value::Int(2)).ok());
  ASSERT_TRUE(s.SetValue(50, 50, Value::Int(3)).ok());
  int count = 0;
  s.VisitRange(0, 0, 10, 10, [&](int64_t r, int64_t c, const Cell& cell) {
    EXPECT_TRUE((r == 0 && c == 0) || (r == 2 && c == 2));
    EXPECT_FALSE(cell.value.is_null());
    ++count;
  });
  EXPECT_EQ(count, 2);
}

TEST(SheetTest, InsertRowsShiftsContentDown) {
  Sheet s("S");
  ASSERT_TRUE(s.SetValue(0, 0, Value::Int(10)).ok());
  ASSERT_TRUE(s.SetValue(1, 0, Value::Int(20)).ok());
  ASSERT_TRUE(s.InsertRows(1, 2).ok());
  EXPECT_EQ(s.GetValue(0, 0), Value::Int(10));
  EXPECT_TRUE(s.GetValue(1, 0).is_null());
  EXPECT_TRUE(s.GetValue(2, 0).is_null());
  EXPECT_EQ(s.GetValue(3, 0), Value::Int(20));
}

TEST(SheetTest, DeleteRowsRemovesContent) {
  Sheet s("S");
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s.SetValue(i, 0, Value::Int(i)).ok());
  }
  ASSERT_TRUE(s.DeleteRows(1, 2).ok());
  EXPECT_EQ(s.GetValue(0, 0), Value::Int(0));
  EXPECT_EQ(s.GetValue(1, 0), Value::Int(3));
  EXPECT_EQ(s.GetValue(2, 0), Value::Int(4));
  EXPECT_EQ(s.cell_count(), 3u);
  EXPECT_FALSE(s.DeleteRows(1000000, 1).ok());
}

TEST(SheetTest, InsertAndDeleteColsShiftContent) {
  Sheet s("S");
  ASSERT_TRUE(s.SetValue(0, 0, Value::Int(1)).ok());
  ASSERT_TRUE(s.SetValue(0, 1, Value::Int(2)).ok());
  ASSERT_TRUE(s.InsertCols(1, 1).ok());
  EXPECT_EQ(s.GetValue(0, 0), Value::Int(1));
  EXPECT_TRUE(s.GetValue(0, 1).is_null());
  EXPECT_EQ(s.GetValue(0, 2), Value::Int(2));
  ASSERT_TRUE(s.DeleteCols(0, 2).ok());
  EXPECT_EQ(s.GetValue(0, 0), Value::Int(2));
  EXPECT_EQ(s.cell_count(), 1u);
}

TEST(SheetTest, StructuralOpsAreFastOnHugeSheets) {
  // O(log n) row insertion via the positional index: inserting in the middle
  // of a million-row sheet must not re-key any cell.
  Sheet s("S", 1 << 20, 8);
  ASSERT_TRUE(s.SetValue(1000000, 0, Value::Int(1)).ok());
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(s.InsertRows(500000, 1).ok());
  }
  EXPECT_EQ(s.GetValue(1001000, 0), Value::Int(1));
}

TEST(SheetTest, EventsEmitted) {
  Sheet s("S");
  std::vector<SheetEvent> events;
  int token = s.AddListener([&](const SheetEvent& e) { events.push_back(e); });
  ASSERT_TRUE(s.SetValue(1, 1, Value::Int(1)).ok());
  ASSERT_TRUE(s.InsertRows(0, 2).ok());
  ASSERT_TRUE(s.DeleteCols(0, 1).ok());
  ASSERT_EQ(events.size(), 3u);
  EXPECT_EQ(events[0].kind, SheetEvent::Kind::kCellChanged);
  EXPECT_EQ(events[0].row, 1);
  EXPECT_EQ(events[1].kind, SheetEvent::Kind::kRowsInserted);
  EXPECT_EQ(events[1].index, 0);
  EXPECT_EQ(events[1].count, 2);
  EXPECT_EQ(events[2].kind, SheetEvent::Kind::kColsDeleted);
  s.RemoveListener(token);
  ASSERT_TRUE(s.SetValue(0, 0, Value::Int(2)).ok());
  EXPECT_EQ(events.size(), 3u);
  // SetComputedValue is silent by design.
  int computed_events = 0;
  s.AddListener([&](const SheetEvent&) { ++computed_events; });
  ASSERT_TRUE(s.SetComputedValue(5, 5, Value::Int(9)).ok());
  EXPECT_EQ(computed_events, 0);
}

TEST(WorkbookTest, SheetManagement) {
  Workbook wb;
  ASSERT_TRUE(wb.AddSheet("Sheet1").ok());
  ASSERT_TRUE(wb.AddSheet("Data").ok());
  EXPECT_FALSE(wb.AddSheet("SHEET1").ok());  // case-insensitive collision
  EXPECT_TRUE(wb.GetSheet("sheet1").ok());
  EXPECT_FALSE(wb.GetSheet("ghost").ok());
  EXPECT_EQ(wb.size(), 2u);
  ASSERT_TRUE(wb.RemoveSheet("Data").ok());
  EXPECT_EQ(wb.size(), 1u);
}

}  // namespace
}  // namespace dataspread
