#include <gtest/gtest.h>

#include <algorithm>
#include <mutex>
#include <thread>

#include "db/database.h"
#include "exec/expr_eval.h"
#include "exec/morsel.h"
#include "exec/operators.h"

namespace dataspread {
namespace {

/// Executes against a fresh database pre-loaded with a small emp table.
class ExecTest : public ::testing::Test {
 protected:
  void SetUp() override {
    Run("CREATE TABLE emp (id INT PRIMARY KEY, name TEXT, dept TEXT, "
        "salary REAL)");
    Run("INSERT INTO emp VALUES (1, 'ann', 'eng', 120.0), "
        "(2, 'bob', 'eng', 100.0), (3, 'cat', 'ops', 90.0), "
        "(4, 'dan', 'ops', 80.0), (5, 'eve', 'hr', 70.0)");
  }

  ResultSet Run(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }

  Status RunErr(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_FALSE(r.ok()) << sql;
    return r.ok() ? Status::OK() : r.status();
  }

  Database db_;
};

TEST_F(ExecTest, SelectStar) {
  ResultSet rs = Run("SELECT * FROM emp");
  EXPECT_EQ(rs.columns,
            (std::vector<std::string>{"id", "name", "dept", "salary"}));
  EXPECT_EQ(rs.num_rows(), 5u);
  EXPECT_EQ(rs.rows[0][1], Value::Text("ann"));
}

TEST_F(ExecTest, Projection) {
  ResultSet rs = Run("SELECT name, salary * 2 AS double_pay FROM emp");
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"name", "double_pay"}));
  EXPECT_EQ(rs.rows[0][1], Value::Real(240.0));
}

TEST_F(ExecTest, WhereFilters) {
  ResultSet rs = Run("SELECT name FROM emp WHERE salary >= 90 AND dept = 'eng'");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("ann"));
}

TEST_F(ExecTest, WhereWithInBetweenLike) {
  EXPECT_EQ(Run("SELECT * FROM emp WHERE id IN (1, 3, 5)").num_rows(), 3u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE salary BETWEEN 80 AND 100").num_rows(),
            3u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE name LIKE '%a%'").num_rows(), 3u);
  EXPECT_EQ(Run("SELECT * FROM emp WHERE name LIKE '_o_'").num_rows(), 1u);
}

TEST_F(ExecTest, OrderByAndLimit) {
  ResultSet rs = Run("SELECT name FROM emp ORDER BY salary DESC LIMIT 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("ann"));
  EXPECT_EQ(rs.rows[1][0], Value::Text("bob"));
  // Positional and multi-key ordering.
  rs = Run("SELECT dept, name FROM emp ORDER BY 1, 2 DESC");
  EXPECT_EQ(rs.rows[0][0], Value::Text("eng"));
  EXPECT_EQ(rs.rows[0][1], Value::Text("bob"));
}

TEST_F(ExecTest, LimitOffset) {
  ResultSet rs = Run("SELECT id FROM emp ORDER BY id LIMIT 2 OFFSET 2");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
}

TEST_F(ExecTest, WindowPushdownPreservesOrder) {
  // The LIMIT/OFFSET pushdown path (no predicates): display order.
  ResultSet rs = Run("SELECT id FROM emp LIMIT 3 OFFSET 1");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
  EXPECT_EQ(rs.rows[2][0], Value::Int(4));
}

TEST_F(ExecTest, Distinct) {
  ResultSet rs = Run("SELECT DISTINCT dept FROM emp ORDER BY dept");
  ASSERT_EQ(rs.num_rows(), 3u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("eng"));
}

TEST_F(ExecTest, GlobalAggregates) {
  ResultSet rs = Run(
      "SELECT COUNT(*), COUNT(salary), SUM(salary), AVG(salary), "
      "MIN(salary), MAX(salary) FROM emp");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(5));
  EXPECT_EQ(rs.rows[0][1], Value::Int(5));
  EXPECT_EQ(rs.rows[0][2], Value::Real(460.0));
  EXPECT_EQ(rs.rows[0][3], Value::Real(92.0));
  EXPECT_EQ(rs.rows[0][4], Value::Real(70.0));
  EXPECT_EQ(rs.rows[0][5], Value::Real(120.0));
}

TEST_F(ExecTest, GroupByWithHaving) {
  ResultSet rs = Run(
      "SELECT dept, COUNT(*) AS n, AVG(salary) AS a FROM emp "
      "GROUP BY dept HAVING COUNT(*) >= 2 ORDER BY a DESC");
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("eng"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(2));
  EXPECT_EQ(rs.rows[0][2], Value::Real(110.0));
  EXPECT_EQ(rs.rows[1][0], Value::Text("ops"));
}

TEST_F(ExecTest, AggregateOverEmptyInput) {
  ResultSet rs = Run("SELECT COUNT(*), SUM(salary) FROM emp WHERE id > 100");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(0));
  EXPECT_TRUE(rs.rows[0][1].is_null());
  // Grouped aggregate over empty input: zero groups.
  rs = Run("SELECT dept, COUNT(*) FROM emp WHERE id > 100 GROUP BY dept");
  EXPECT_EQ(rs.num_rows(), 0u);
}

TEST(JoinBatchCapacityTest, CrossJoinNeverOvershootsBatchCapacity) {
  // Tiny batch, high fan-out: 3 left rows × 10 right rows through a
  // 4-tuple batch. The regression: resuming a new left row into a batch
  // already holding rows from the previous one used to size its emit chunk
  // from the full capacity, overshooting the batch (capacity was "a target,
  // not a limit"). Batches must now never exceed capacity.
  auto left = std::make_shared<std::vector<Row>>();
  for (int i = 0; i < 3; ++i) left->push_back(Row{Value::Int(i)});
  auto right = std::make_shared<std::vector<Row>>();
  for (int j = 0; j < 10; ++j) right->push_back(Row{Value::Int(100 + j)});
  NestedLoopJoinOp join(std::make_unique<RowsScanOp>(left),
                        std::make_unique<RowsScanOp>(right),
                        /*on=*/nullptr, /*left_outer=*/false,
                        /*right_width=*/1);
  ASSERT_TRUE(join.Open().ok());
  RowBatch out(4);
  std::vector<Row> got;
  while (true) {
    auto more = join.Next(&out);
    ASSERT_TRUE(more.ok());
    if (!more.value()) break;
    EXPECT_LE(out.size(), out.capacity()) << "batch overshot its capacity";
    std::vector<uint32_t> scratch;
    for (uint32_t p : out.ActivePositions(&scratch)) {
      got.push_back(out.MaterializeRow(p));
    }
  }
  ASSERT_EQ(got.size(), 30u);
  for (int i = 0; i < 3; ++i) {
    for (int j = 0; j < 10; ++j) {
      EXPECT_EQ(got[static_cast<size_t>(i) * 10 + j][0], Value::Int(i));
      EXPECT_EQ(got[static_cast<size_t>(i) * 10 + j][1], Value::Int(100 + j));
    }
  }
}

TEST_F(ExecTest, InnerJoinHashPath) {
  Run("CREATE TABLE dept (dept TEXT, floor INT)");
  Run("INSERT INTO dept VALUES ('eng', 3), ('ops', 1)");
  ResultSet rs = Run(
      "SELECT e.name, d.floor FROM emp e JOIN dept d ON e.dept = d.dept "
      "ORDER BY e.name");
  ASSERT_EQ(rs.num_rows(), 4u);  // hr has no match
  EXPECT_EQ(rs.rows[0][0], Value::Text("ann"));
  EXPECT_EQ(rs.rows[0][1], Value::Int(3));
}

TEST_F(ExecTest, LeftJoinKeepsUnmatched) {
  Run("CREATE TABLE dept (dept TEXT, floor INT)");
  Run("INSERT INTO dept VALUES ('eng', 3)");
  ResultSet rs = Run(
      "SELECT e.name, d.floor FROM emp e LEFT JOIN dept d ON e.dept = d.dept "
      "ORDER BY e.id");
  ASSERT_EQ(rs.num_rows(), 5u);
  EXPECT_EQ(rs.rows[0][1], Value::Int(3));
  EXPECT_TRUE(rs.rows[2][1].is_null());  // ops unmatched
}

TEST_F(ExecTest, NaturalJoinSharesColumnsOnce) {
  Run("CREATE TABLE dept (dept TEXT, floor INT)");
  Run("INSERT INTO dept VALUES ('eng', 3), ('ops', 1), ('hr', 2)");
  ResultSet rs = Run("SELECT * FROM emp NATURAL JOIN dept ORDER BY id");
  // dept appears once: id, name, dept, salary, floor.
  EXPECT_EQ(rs.columns, (std::vector<std::string>{"id", "name", "dept",
                                                  "salary", "floor"}));
  ASSERT_EQ(rs.num_rows(), 5u);
  EXPECT_EQ(rs.rows[0][4], Value::Int(3));
}

TEST_F(ExecTest, CrossJoinCounts) {
  Run("CREATE TABLE two (x INT)");
  Run("INSERT INTO two VALUES (1), (2)");
  EXPECT_EQ(Run("SELECT * FROM emp, two").num_rows(), 10u);
  EXPECT_EQ(Run("SELECT * FROM emp CROSS JOIN two").num_rows(), 10u);
}

TEST_F(ExecTest, NonEquiJoinFallsBackToNestedLoop) {
  Run("CREATE TABLE grades (lo REAL, hi REAL, grade TEXT)");
  Run("INSERT INTO grades VALUES (0, 85, 'B'), (85, 200, 'A')");
  ResultSet rs = Run(
      "SELECT e.name, g.grade FROM emp e JOIN grades g "
      "ON e.salary >= g.lo AND e.salary < g.hi ORDER BY e.id");
  ASSERT_EQ(rs.num_rows(), 5u);
  EXPECT_EQ(rs.rows[0][1], Value::Text("A"));   // ann 120
  EXPECT_EQ(rs.rows[4][1], Value::Text("B"));   // eve 70
}

TEST_F(ExecTest, ScalarFunctions) {
  ResultSet rs = Run(
      "SELECT ABS(-3), ROUND(2.567, 1), UPPER('ab'), LENGTH('abcd'), "
      "SUBSTR('hello', 2, 3), COALESCE(NULL, 7), NULLIF(3, 3)");
  EXPECT_EQ(rs.rows[0][0], Value::Int(3));
  EXPECT_EQ(rs.rows[0][1], Value::Real(2.6));
  EXPECT_EQ(rs.rows[0][2], Value::Text("AB"));
  EXPECT_EQ(rs.rows[0][3], Value::Int(4));
  EXPECT_EQ(rs.rows[0][4], Value::Text("ell"));
  EXPECT_EQ(rs.rows[0][5], Value::Int(7));
  EXPECT_TRUE(rs.rows[0][6].is_null());
}

TEST_F(ExecTest, CaseExpression) {
  ResultSet rs = Run(
      "SELECT name, CASE WHEN salary >= 100 THEN 'high' "
      "WHEN salary >= 80 THEN 'mid' ELSE 'low' END AS band "
      "FROM emp ORDER BY id");
  EXPECT_EQ(rs.rows[0][1], Value::Text("high"));
  EXPECT_EQ(rs.rows[2][1], Value::Text("mid"));
  EXPECT_EQ(rs.rows[4][1], Value::Text("low"));
}

TEST_F(ExecTest, NullSemantics) {
  Run("CREATE TABLE n (a INT, b INT)");
  Run("INSERT INTO n VALUES (1, NULL), (NULL, 2), (3, 4)");
  // NULL comparisons reject rows.
  EXPECT_EQ(Run("SELECT * FROM n WHERE a > 0").num_rows(), 2u);
  EXPECT_EQ(Run("SELECT * FROM n WHERE a IS NULL").num_rows(), 1u);
  // NULL keys never hash-join.
  Run("CREATE TABLE m (a INT)");
  Run("INSERT INTO m VALUES (NULL), (1)");
  EXPECT_EQ(Run("SELECT * FROM n JOIN m ON n.a = m.a").num_rows(), 1u);
  // Aggregates skip NULLs.
  ResultSet rs = Run("SELECT COUNT(a), SUM(a) FROM n");
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
  EXPECT_EQ(rs.rows[0][1], Value::Int(4));
}

TEST_F(ExecTest, DivisionByZeroIsError) {
  RunErr("SELECT 1 / 0");
  RunErr("SELECT 5 % 0");
}

TEST_F(ExecTest, IntegerDivisionStaysExactWhenPossible) {
  ResultSet rs = Run("SELECT 6 / 3, 7 / 2, 7 % 3, 'a' || 1");
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
  EXPECT_EQ(rs.rows[0][1], Value::Real(3.5));
  EXPECT_EQ(rs.rows[0][2], Value::Int(1));
  EXPECT_EQ(rs.rows[0][3], Value::Text("a1"));
}

TEST_F(ExecTest, BinderErrors) {
  RunErr("SELECT nope FROM emp");
  RunErr("SELECT x.name FROM emp");
  RunErr("SELECT * FROM ghost");
  RunErr("SELECT SUM(salary) FROM emp WHERE SUM(salary) > 1");  // agg in WHERE
  RunErr("SELECT UNKNOWN_FN(1)");
  // Ambiguity.
  Run("CREATE TABLE emp2 (name TEXT)");
  Run("INSERT INTO emp2 VALUES ('x')");
  RunErr("SELECT name FROM emp, emp2");
}

TEST_F(ExecTest, TypeMismatchComparisonIsError) {
  RunErr("SELECT * FROM emp WHERE name > 5");
}

TEST_F(ExecTest, FromlessSelect) {
  ResultSet rs = Run("SELECT 1 + 1 AS two, 'x'");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Int(2));
}

// ---- Batch pipeline (vectorized execution) ---------------------------------

/// The row pipeline is the semantic reference; every query here must come out
/// byte-identical through the batch pipeline at several batch sizes,
/// including degenerate (1) and larger-than-input (512) batches.
class BatchPipelineTest : public ExecTest {
 protected:
  ResultSet RunWith(const std::string& sql, const ExecOptions& exec) {
    db_.set_exec_options(exec);
    ResultSet rs = Run(sql);
    db_.set_exec_options(ExecOptions{});
    return rs;
  }

  void ExpectSame(const std::string& sql) {
    ResultSet row = RunWith(sql, ExecOptions{0, /*row_at_a_time=*/true});
    for (size_t batch : {size_t{1}, size_t{3}, size_t{512}}) {
      ResultSet b = RunWith(sql, ExecOptions{batch, false});
      EXPECT_EQ(row.columns, b.columns) << sql;
      EXPECT_EQ(row.rows, b.rows) << sql << " (batch=" << batch << ")";
    }
  }
};

TEST_F(BatchPipelineTest, MatchesRowPipelineOnCoreQueries) {
  Run("CREATE TABLE dept (dept TEXT, floor INT)");
  Run("INSERT INTO dept VALUES ('eng', 3), ('ops', 1)");
  for (const char* q : {
           "SELECT * FROM emp",
           "SELECT name, salary * 2 + 1 FROM emp",
           "SELECT name FROM emp WHERE salary >= 90 AND dept = 'eng'",
           "SELECT * FROM emp WHERE id IN (1, 3, 5)",
           "SELECT * FROM emp WHERE name LIKE '%a%'",
           "SELECT CASE WHEN salary > 95 THEN 'hi' ELSE 'lo' END FROM emp",
           "SELECT name FROM emp ORDER BY salary DESC, name",
           "SELECT DISTINCT dept FROM emp ORDER BY dept",
           "SELECT dept, COUNT(*), AVG(salary) FROM emp GROUP BY dept "
           "HAVING COUNT(*) > 1 ORDER BY dept",
           "SELECT COUNT(*), SUM(salary), MIN(name), MAX(salary) FROM emp",
           "SELECT e.name, d.floor FROM emp e JOIN dept d ON e.dept = d.dept "
           "ORDER BY e.id",
           "SELECT e.name, d.floor FROM emp e LEFT JOIN dept d "
           "ON e.dept = d.dept ORDER BY e.id",
           "SELECT * FROM emp NATURAL JOIN dept ORDER BY id",
           "SELECT * FROM emp CROSS JOIN dept ORDER BY id, floor",
           "SELECT e.name, d.dept FROM emp e JOIN dept d ON e.salary > "
           "d.floor * 30 ORDER BY e.id, d.dept",
           "SELECT 1 + 1, 'x'",
       }) {
    ExpectSame(q);
  }
}

TEST_F(BatchPipelineTest, EmptyAndSingleTupleInputs) {
  Run("CREATE TABLE empty (a INT, b TEXT)");
  Run("CREATE TABLE one (a INT, b TEXT)");
  Run("INSERT INTO one VALUES (1, 'x')");
  for (const char* q : {
           "SELECT * FROM empty",
           "SELECT a + 1 FROM empty WHERE a > 0",
           "SELECT COUNT(*), SUM(a) FROM empty",
           "SELECT b, COUNT(*) FROM empty GROUP BY b",
           "SELECT * FROM empty ORDER BY a LIMIT 3",
           "SELECT DISTINCT b FROM empty",
           "SELECT * FROM one",
           "SELECT * FROM one CROSS JOIN empty",
           "SELECT * FROM one LEFT JOIN empty ON one.a = empty.a",
           "SELECT COUNT(*) FROM one",
       }) {
    ExpectSame(q);
  }
}

TEST_F(BatchPipelineTest, ExactBatchBoundary) {
  // 6 input tuples against batch sizes that divide, straddle, and exceed
  // the input: the final batch is exactly full, partially full, and the
  // only batch respectively.
  Run("CREATE TABLE six (a INT)");
  Run("INSERT INTO six VALUES (1), (2), (3), (4), (5), (6)");
  ResultSet row = RunWith("SELECT a * 10 FROM six WHERE a <> 4 ORDER BY a",
                          ExecOptions{0, /*row_at_a_time=*/true});
  for (size_t batch : {size_t{2}, size_t{3}, size_t{4}, size_t{6}, size_t{7}}) {
    ResultSet b = RunWith("SELECT a * 10 FROM six WHERE a <> 4 ORDER BY a",
                          ExecOptions{batch, false});
    EXPECT_EQ(row.rows, b.rows) << "batch=" << batch;
  }
}

TEST_F(BatchPipelineTest, LimitOffsetPushdownBoundaries) {
  // The bare-scan pushdown window (no WHERE/ORDER) and the generic LimitOp
  // path must agree in both modes at every boundary.
  for (const char* q : {
           "SELECT id FROM emp LIMIT 2",
           "SELECT id FROM emp LIMIT 2 OFFSET 2",
           "SELECT id FROM emp LIMIT 10 OFFSET 4",   // clipped at the end
           "SELECT id FROM emp LIMIT 3 OFFSET 5",    // offset == num_rows
           "SELECT id FROM emp LIMIT 3 OFFSET 9",    // offset past the end
           "SELECT id FROM emp LIMIT 0",
           "SELECT id FROM emp LIMIT 5 OFFSET 0",
           "SELECT id FROM emp WHERE id > 1 LIMIT 2 OFFSET 1",  // no pushdown
           "SELECT id FROM emp ORDER BY id DESC LIMIT 2 OFFSET 3",
       }) {
    ExpectSame(q);
  }
}

TEST_F(BatchPipelineTest, ErrorsSurfaceInBothModes) {
  db_.set_exec_options(ExecOptions{0, /*row_at_a_time=*/true});
  RunErr("SELECT salary / (id - id) FROM emp");
  RunErr("SELECT * FROM emp WHERE name > 5");
  db_.set_exec_options(ExecOptions{});
  RunErr("SELECT salary / (id - id) FROM emp");
  RunErr("SELECT * FROM emp WHERE name > 5");
}

// ---- Morsel-parallel pipeline (DESIGN.md §6b) ------------------------------

/// The serial batch pipeline is the reference; every query here must come
/// out byte-identical through the morsel-parallel leaf across thread counts
/// and morsel sizes that force boundary edges (one morsel, many tiny
/// morsels, counts not divisible by the morsel size). Aggregate inputs are
/// multiples of 0.25 so parallel SUM/AVG merges are fp-exact.
class MorselPipelineTest : public ExecTest {
 protected:
  /// nums: 50 rows, k = 0..49, grp cycles g0..g6, x = (k % 40) / 4.0 with a
  /// NULL every 11th row.
  void LoadNums() {
    Run("CREATE TABLE nums (k INT PRIMARY KEY, grp TEXT, x REAL)");
    std::string insert = "INSERT INTO nums VALUES ";
    for (int k = 0; k < 50; ++k) {
      if (k > 0) insert += ", ";
      insert += "(" + std::to_string(k) + ", 'g" + std::to_string(k % 7) +
                "', ";
      insert += (k % 11 == 10)
                    ? "NULL)"
                    : std::to_string(static_cast<double>(k % 40) / 4.0) + ")";
    }
    Run(insert);
  }

  ResultSet RunWith(const std::string& sql, const ExecOptions& exec) {
    db_.set_exec_options(exec);
    ResultSet rs = Run(sql);
    db_.set_exec_options(ExecOptions{});
    return rs;
  }

  /// Serial batch reference vs parallel at 1/2/4 threads × morsel sizes
  /// {1 row, 8 rows (does not divide 50), default}.
  void ExpectParallelMatchesSerial(const std::string& sql,
                                   size_t batch_size = 4) {
    ResultSet serial = RunWith(sql, ExecOptions{batch_size, false});
    for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
      for (size_t morsel : {size_t{1}, size_t{8}, size_t{0}}) {
        ResultSet par =
            RunWith(sql, ExecOptions{batch_size, false, threads, morsel});
        EXPECT_EQ(serial.columns, par.columns) << sql;
        EXPECT_EQ(serial.rows, par.rows)
            << sql << " (threads=" << threads << ", morsel=" << morsel << ")";
      }
    }
  }
};

TEST_F(MorselPipelineTest, EmptyTable) {
  Run("CREATE TABLE nothing (a INT, b REAL)");
  for (const char* q : {
           "SELECT * FROM nothing",
           "SELECT a FROM nothing WHERE a > 0",
           "SELECT COUNT(*), SUM(b), MIN(a) FROM nothing",
           "SELECT b, COUNT(*) FROM nothing GROUP BY b",
           "SELECT a FROM nothing LIMIT 3",
       }) {
    ExpectParallelMatchesSerial(q);
  }
}

TEST_F(MorselPipelineTest, SingleMorselAndNonDivisibleCounts) {
  LoadNums();
  // Morsel sizes 1/8/default against 50 rows: 50 one-row morsels, seven
  // 8-row morsels minus an absorbed tail, and one morsel covering the whole
  // table — all must agree with the serial pipeline.
  for (const char* q : {
           "SELECT * FROM nums",
           "SELECT k, x FROM nums WHERE k % 3 = 0",
           "SELECT COUNT(*), COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) "
           "FROM nums",
           "SELECT COUNT(*) FROM nums WHERE k > 100",
       }) {
    ExpectParallelMatchesSerial(q);
  }
}

TEST_F(MorselPipelineTest, GroupOrderAndAggregatesMatchSerial) {
  LoadNums();
  for (const char* q : {
           // No ORDER BY: group first-seen order itself must reproduce.
           "SELECT grp, COUNT(*), SUM(x), MIN(k), MAX(x) FROM nums "
           "GROUP BY grp",
           "SELECT grp, COUNT(*) AS n, AVG(x) AS a FROM nums "
           "GROUP BY grp HAVING COUNT(*) > 6 ORDER BY a DESC, grp",
           "SELECT k % 2, MIN(x), MAX(k) FROM nums WHERE x >= 1.0 "
           "GROUP BY k % 2",
           "SELECT DISTINCT grp FROM nums",
       }) {
    ExpectParallelMatchesSerial(q);
  }
}

TEST_F(MorselPipelineTest, LimitCutsMidMorsel) {
  LoadNums();
  for (const char* q : {
           "SELECT k FROM nums LIMIT 11",            // pushdown window
           "SELECT k FROM nums LIMIT 11 OFFSET 5",   // pushdown window
           "SELECT k FROM nums WHERE x >= 2.0 LIMIT 11",        // early stop
           "SELECT k + 1 FROM nums WHERE k <> 25 LIMIT 9 OFFSET 2",
           "SELECT k FROM nums WHERE k % 2 = 0 LIMIT 100",  // limit > rows
           "SELECT k FROM nums LIMIT 0",
           "SELECT k FROM nums ORDER BY x DESC, k LIMIT 7",  // no early stop
       }) {
    ExpectParallelMatchesSerial(q);
  }
}

TEST_F(MorselPipelineTest, ErrorsSurfaceInParallelMode) {
  LoadNums();
  db_.set_exec_options(ExecOptions{4, false, 4, 8});
  RunErr("SELECT x / (k - k) FROM nums");
  RunErr("SELECT SUM(x / (k - k)) FROM nums");
  RunErr("SELECT * FROM nums WHERE grp > 5");
  db_.set_exec_options(ExecOptions{});
}

TEST_F(MorselPipelineTest, BuildMorselsTilesTheWindow) {
  LoadNums();
  const Table* t = db_.catalog().GetTable("nums").value();
  for (size_t morsel_size : {size_t{1}, size_t{7}, size_t{8}, size_t{64}}) {
    std::vector<Morsel> ms = BuildMorsels(*t, 0, 50, morsel_size);
    size_t pos = 0;
    for (size_t i = 0; i < ms.size(); ++i) {
      EXPECT_EQ(ms[i].index, i);
      EXPECT_EQ(ms[i].start, pos) << "morsel_size=" << morsel_size;
      EXPECT_GT(ms[i].count, 0u);
      if (i + 1 < ms.size()) {
        EXPECT_GE(ms[i].count, morsel_size);
        EXPECT_LT(ms[i].count, 2 * morsel_size);
      }
      pos += ms[i].count;
    }
    EXPECT_EQ(pos, 50u) << "morsel_size=" << morsel_size;
  }
  EXPECT_TRUE(BuildMorsels(*t, 50, 10, 8).empty());  // window past the end
  EXPECT_TRUE(BuildMorsels(*t, 0, 0, 8).empty());
  // Clipped window.
  std::vector<Morsel> tail = BuildMorsels(*t, 45, 100, 8);
  ASSERT_EQ(tail.size(), 1u);
  EXPECT_EQ(tail[0].start, 45u);
  EXPECT_EQ(tail[0].count, 5u);
}

TEST(MorselDispenserTest, DispensesEachMorselOnceInOrder) {
  std::vector<Morsel> ms;
  for (size_t i = 0; i < 64; ++i) ms.push_back(Morsel{i, i * 10, 10});
  MorselDispenser d(std::move(ms));
  std::mutex mu;
  std::vector<size_t> got;
  std::vector<std::thread> pool;
  for (int t = 0; t < 4; ++t) {
    pool.emplace_back([&] {
      Morsel m;
      while (d.Next(&m)) {
        std::lock_guard<std::mutex> lock(mu);
        got.push_back(m.index);
      }
    });
  }
  for (std::thread& t : pool) t.join();
  std::sort(got.begin(), got.end());
  ASSERT_EQ(got.size(), 64u);
  for (size_t i = 0; i < 64; ++i) EXPECT_EQ(got[i], i);
}

TEST(MorselDispenserTest, CloseStopsDispensing) {
  MorselDispenser d(std::vector<Morsel>{Morsel{0, 0, 5}, Morsel{1, 5, 5}});
  Morsel m;
  ASSERT_TRUE(d.Next(&m));
  EXPECT_EQ(m.index, 0u);
  d.Close();
  EXPECT_FALSE(d.Next(&m));
}

TEST(LikeMatchTest, Patterns) {
  EXPECT_TRUE(LikeMatch("hello", "h%o"));
  EXPECT_TRUE(LikeMatch("hello", "%"));
  EXPECT_TRUE(LikeMatch("hello", "_ello"));
  EXPECT_TRUE(LikeMatch("", "%"));
  EXPECT_FALSE(LikeMatch("", "_"));
  EXPECT_TRUE(LikeMatch("abc", "abc"));
  EXPECT_FALSE(LikeMatch("abc", "ab"));
  EXPECT_TRUE(LikeMatch("aXbXc", "a%b%c"));
  EXPECT_FALSE(LikeMatch("ac", "a_c"));
  EXPECT_TRUE(LikeMatch("mississippi", "%ss%pp%"));
}

}  // namespace
}  // namespace dataspread
