#include <gtest/gtest.h>

#include "catalog/catalog.h"

namespace dataspread {
namespace {

Schema MovieSchema() {
  return Schema({ColumnDef{"movieid", DataType::kInt, true},
                 ColumnDef{"title", DataType::kText, false},
                 ColumnDef{"year", DataType::kInt, false}});
}

TEST(SchemaTest, ValidateRejectsDuplicatesAndDoublePk) {
  Schema dup({ColumnDef{"a", DataType::kInt, false},
              ColumnDef{"A", DataType::kText, false}});
  EXPECT_FALSE(dup.Validate().ok());
  Schema two_pk({ColumnDef{"a", DataType::kInt, true},
                 ColumnDef{"b", DataType::kInt, true}});
  EXPECT_FALSE(two_pk.Validate().ok());
  EXPECT_TRUE(MovieSchema().Validate().ok());
}

TEST(SchemaTest, FindColumnCaseInsensitive) {
  Schema s = MovieSchema();
  EXPECT_EQ(s.FindColumn("TITLE").value_or(99), 1u);
  EXPECT_FALSE(s.FindColumn("nope").has_value());
  EXPECT_EQ(s.primary_key_index().value_or(99), 0u);
}

TEST(SchemaTest, MutationGuards) {
  Schema s = MovieSchema();
  EXPECT_FALSE(s.AddColumn(ColumnDef{"title", DataType::kInt, false}).ok());
  EXPECT_FALSE(s.AddColumn(ColumnDef{"id2", DataType::kInt, true}).ok());
  EXPECT_TRUE(s.AddColumn(ColumnDef{"genre", DataType::kText, false}).ok());
  EXPECT_FALSE(s.RenameColumn(1, "YEAR").ok());  // collision
  EXPECT_TRUE(s.RenameColumn(1, "name").ok());
  EXPECT_EQ(s.FindColumn("name").value_or(99), 1u);
}

TEST(TableTest, InsertAndOrderedAccess) {
  auto table = Table::Create("movies", MovieSchema()).ValueOrDie();
  ASSERT_TRUE(
      table->AppendRow({Value::Int(1), Value::Text("Alien"), Value::Int(1979)})
          .ok());
  ASSERT_TRUE(
      table->AppendRow({Value::Int(2), Value::Text("Brazil"), Value::Int(1985)})
          .ok());
  ASSERT_TRUE(table
                  ->InsertRowAt(1, {Value::Int(3), Value::Text("Clue"),
                                    Value::Int(1985)})
                  .ok());
  EXPECT_EQ(table->num_rows(), 3u);
  EXPECT_EQ(table->GetAt(0, 1).value(), Value::Text("Alien"));
  EXPECT_EQ(table->GetAt(1, 1).value(), Value::Text("Clue"));
  EXPECT_EQ(table->GetAt(2, 1).value(), Value::Text("Brazil"));
}

TEST(TableTest, TypeCoercionOnInsert) {
  auto table = Table::Create("movies", MovieSchema()).ValueOrDie();
  // year arrives as text but coerces to INT.
  ASSERT_TRUE(
      table->AppendRow({Value::Int(1), Value::Text("x"), Value::Text("1999")})
          .ok());
  EXPECT_EQ(table->GetAt(0, 2).value(), Value::Int(1999));
  // Uncoercible text fails.
  EXPECT_FALSE(
      table->AppendRow({Value::Int(2), Value::Text("y"), Value::Text("abc")})
          .ok());
}

TEST(TableTest, PrimaryKeyEnforced) {
  auto table = Table::Create("movies", MovieSchema()).ValueOrDie();
  ASSERT_TRUE(
      table->AppendRow({Value::Int(1), Value::Text("a"), Value::Int(2000)}).ok());
  // Duplicate key.
  EXPECT_FALSE(
      table->AppendRow({Value::Int(1), Value::Text("b"), Value::Int(2001)}).ok());
  // NULL key.
  EXPECT_FALSE(
      table->AppendRow({Value::Null(), Value::Text("c"), Value::Int(2002)}).ok());
  // Update to a clashing key fails; to a fresh key succeeds.
  ASSERT_TRUE(
      table->AppendRow({Value::Int(2), Value::Text("b"), Value::Int(2001)}).ok());
  EXPECT_FALSE(table->UpdateAt(1, 0, Value::Int(1)).ok());
  EXPECT_TRUE(table->UpdateAt(1, 0, Value::Int(9)).ok());
  EXPECT_EQ(table->FindByKey(Value::Int(9)).value(), 1u);
}

TEST(TableTest, FindByKeyAfterDeleteAndReorder) {
  auto table = Table::Create("movies", MovieSchema()).ValueOrDie();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({Value::Int(i), Value::Text("t"),
                                 Value::Int(1990 + i)})
                    .ok());
  }
  ASSERT_TRUE(table->DeleteRowAt(0).ok());
  EXPECT_FALSE(table->FindByKey(Value::Int(0)).ok());
  EXPECT_EQ(table->FindByKey(Value::Int(5)).value(), 4u);
  EXPECT_EQ(table->GetAt(4, 0).value(), Value::Int(5));
}

TEST(TableTest, GetWindowClipsAndOrders) {
  auto table = Table::Create("movies", MovieSchema()).ValueOrDie();
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({Value::Int(i), Value::Text("t"),
                                 Value::Int(1900 + i)})
                    .ok());
  }
  auto window = table->GetWindow(90, 20);
  ASSERT_EQ(window.size(), 10u);
  EXPECT_EQ(window[0][0], Value::Int(90));
  EXPECT_EQ(window[9][0], Value::Int(99));
}

TEST(TableTest, SchemaChangesPreserveData) {
  auto table = Table::Create("movies", MovieSchema()).ValueOrDie();
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(table
                    ->AppendRow({Value::Int(i), Value::Text("m"),
                                 Value::Int(2000)})
                    .ok());
  }
  ASSERT_TRUE(
      table->AddColumn(ColumnDef{"rating", DataType::kReal, false},
                       Value::Real(7.5))
          .ok());
  EXPECT_EQ(table->schema().num_columns(), 4u);
  EXPECT_EQ(table->GetAt(10, 3).value(), Value::Real(7.5));
  ASSERT_TRUE(table->DropColumn("year").ok());
  EXPECT_EQ(table->GetAt(10, 2).value(), Value::Real(7.5));
  ASSERT_TRUE(table->RenameColumn("rating", "score").ok());
  EXPECT_TRUE(table->schema().FindColumn("score").has_value());
  EXPECT_FALSE(table->DropColumn("ghost").ok());
}

TEST(TableTest, AddPkColumnOnlyWhenEmpty) {
  auto table =
      Table::Create("t", Schema({ColumnDef{"a", DataType::kInt, false}}))
          .ValueOrDie();
  ASSERT_TRUE(table->AppendRow({Value::Int(1)}).ok());
  EXPECT_FALSE(
      table->AddColumn(ColumnDef{"id", DataType::kInt, true}, Value::Null())
          .ok());
}

TEST(TableTest, ListenersFireWithPositions) {
  auto table = Table::Create("movies", MovieSchema()).ValueOrDie();
  std::vector<TableChange> changes;
  int token = table->AddListener(
      [&](const Table&, const TableChange& c) { changes.push_back(c); });
  ASSERT_TRUE(
      table->AppendRow({Value::Int(1), Value::Text("a"), Value::Int(1)}).ok());
  ASSERT_TRUE(table->UpdateAt(0, 1, Value::Text("b")).ok());
  ASSERT_TRUE(table->DeleteRowAt(0).ok());
  ASSERT_EQ(changes.size(), 3u);
  EXPECT_EQ(changes[0].kind, TableChange::Kind::kInsert);
  EXPECT_EQ(changes[1].kind, TableChange::Kind::kUpdate);
  EXPECT_EQ(changes[1].column, 1u);
  EXPECT_EQ(changes[2].kind, TableChange::Kind::kDelete);
  uint64_t version = table->version();
  table->RemoveListener(token);
  ASSERT_TRUE(
      table->AppendRow({Value::Int(2), Value::Text("c"), Value::Int(2)}).ok());
  EXPECT_EQ(changes.size(), 3u);          // detached
  EXPECT_GT(table->version(), version);  // version still advances
}

TEST(CatalogTest, CreateGetDrop) {
  Catalog catalog;
  ASSERT_TRUE(catalog.CreateTable("Movies", MovieSchema()).ok());
  EXPECT_TRUE(catalog.HasTable("MOVIES"));
  EXPECT_TRUE(catalog.GetTable("movies").ok());
  EXPECT_FALSE(catalog.CreateTable("MOVIES", MovieSchema()).ok());
  EXPECT_EQ(catalog.TableNames(), std::vector<std::string>{"Movies"});
  ASSERT_TRUE(catalog.DropTable("movies").ok());
  EXPECT_FALSE(catalog.GetTable("movies").ok());
  EXPECT_FALSE(catalog.DropTable("movies").ok());
}

TEST(TableTest, ScanEarlyStop) {
  auto table = Table::Create("movies", MovieSchema()).ValueOrDie();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        table->AppendRow({Value::Int(i), Value::Text("t"), Value::Int(i)}).ok());
  }
  int visited = 0;
  table->Scan([&](size_t, const Row&) {
    ++visited;
    return visited < 3;
  });
  EXPECT_EQ(visited, 3);
}

}  // namespace
}  // namespace dataspread
