// Multi-statement transaction state machine (DESIGN.md §7): SQL
// BEGIN/COMMIT/ROLLBACK over the per-Database transaction state, undo of
// partially applied transactions, Postgres-style poisoning. Crash-side
// coverage (committed-prefix recovery of transaction brackets) lives in
// wal_test.cc / catalog_recovery_test.cc; transactional transparency in
// property_test.cc invariant 11.

#include <gtest/gtest.h>

#include <cstdio>
#include <string>

#include "db/database.h"

namespace dataspread {
namespace {

// ---------------------------------------------------------------------------
// State machine over every storage model
// ---------------------------------------------------------------------------

class TxnSqlTest : public ::testing::TestWithParam<StorageModel> {
 protected:
  void SetUp() override {
    Schema schema;
    ASSERT_TRUE(schema.AddColumn(ColumnDef{"id", DataType::kInt, true}).ok());
    ASSERT_TRUE(schema.AddColumn(ColumnDef{"v", DataType::kText, false}).ok());
    ASSERT_TRUE(db_.CreateTable("t", std::move(schema), GetParam()).ok());
  }

  ResultSet Run(const std::string& sql) {
    auto r = db_.Execute(sql);
    EXPECT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    return r.ok() ? std::move(r).value() : ResultSet{};
  }
  size_t CountRows() { return Run("SELECT * FROM t").num_rows(); }

  Database db_;
};

TEST_P(TxnSqlTest, BeginCommitMakesAllStatementsVisible) {
  Run("BEGIN");
  Run("INSERT INTO t VALUES (1, 'a')");
  Run("INSERT INTO t VALUES (2, 'b')");
  Run("UPDATE t SET v = 'a2' WHERE id = 1");
  // Own writes are visible inside the transaction.
  EXPECT_EQ(CountRows(), 2u);
  ResultSet rs = Run("COMMIT");
  EXPECT_EQ(rs.message, "COMMIT");
  EXPECT_EQ(CountRows(), 2u);
  rs = Run("SELECT v FROM t WHERE id = 1");
  EXPECT_EQ(rs.rows[0][0], Value::Text("a2"));
}

TEST_P(TxnSqlTest, RollbackRestoresThePreTransactionState) {
  Run("INSERT INTO t VALUES (1, 'keep')");
  Run("BEGIN");
  Run("INSERT INTO t VALUES (2, 'gone')");
  Run("UPDATE t SET v = 'mutated' WHERE id = 1");
  Run("DELETE FROM t WHERE id = 1");
  EXPECT_EQ(CountRows(), 1u);
  ResultSet rs = Run("ROLLBACK");
  EXPECT_EQ(rs.message, "ROLLBACK");
  EXPECT_EQ(CountRows(), 1u);
  rs = Run("SELECT v FROM t WHERE id = 1");
  ASSERT_EQ(rs.num_rows(), 1u);
  EXPECT_EQ(rs.rows[0][0], Value::Text("keep"));
}

TEST_P(TxnSqlTest, RollbackRestoresDisplayOrderAndRowIds) {
  for (int i = 0; i < 4; ++i) {
    Run("INSERT INTO t VALUES (" + std::to_string(i) + ", 'r" +
        std::to_string(i) + "')");
  }
  Table* table = db_.catalog().GetTable("t").ValueOrDie();
  // Middle insert + middle delete scramble display order and the rid maps;
  // ROLLBACK must put back the exact order, not just the row multiset.
  // Direct Table-API writes inside a transaction require LOCK TABLE: the
  // undo journal installs with the write latch, not at BEGIN.
  Run("BEGIN");
  ASSERT_EQ(Run("LOCK TABLE t").message, "LOCK TABLE t");
  ASSERT_TRUE(table->InsertRowAt(1, {Value::Int(99), Value::Text("mid")}).ok());
  ASSERT_TRUE(table->DeleteRowAt(3).ok());
  ASSERT_TRUE(table->DeleteRowAt(0).ok());
  Run("ROLLBACK");
  ASSERT_EQ(table->num_rows(), 4u);
  for (size_t pos = 0; pos < 4; ++pos) {
    Row row = table->GetRowAt(pos).ValueOrDie();
    EXPECT_EQ(row[0], Value::Int(static_cast<int64_t>(pos))) << "pos " << pos;
    EXPECT_EQ(row[1], Value::Text("r" + std::to_string(pos))) << "pos " << pos;
  }
  // The rid maps survived too: key-direct access still lands on every row.
  for (int i = 0; i < 4; ++i) {
    EXPECT_TRUE(table->GetRowByKey(Value::Int(i)).ok()) << i;
  }
}

TEST_P(TxnSqlTest, NestedBeginRejectedWithoutPoisoning) {
  Run("BEGIN");
  Run("INSERT INTO t VALUES (1, 'a')");
  EXPECT_FALSE(db_.Execute("BEGIN").ok());
  // The rejection is protocol noise, not a transaction failure: work
  // continues and commits.
  Run("INSERT INTO t VALUES (2, 'b')");
  Run("COMMIT");
  EXPECT_EQ(CountRows(), 2u);
}

TEST_P(TxnSqlTest, CommitAndRollbackWithoutBeginRejected) {
  EXPECT_FALSE(db_.Execute("COMMIT").ok());
  EXPECT_FALSE(db_.Execute("ROLLBACK").ok());
  EXPECT_FALSE(db_.Execute("ABORT").ok());
  // The rejections leave autocommit intact.
  Run("INSERT INTO t VALUES (1, 'a')");
  EXPECT_EQ(CountRows(), 1u);
}

TEST_P(TxnSqlTest, StatementErrorPoisonsUntilRollback) {
  Run("INSERT INTO t VALUES (1, 'a')");
  Run("BEGIN");
  Run("INSERT INTO t VALUES (2, 'b')");
  // Duplicate PK: the statement fails and poisons the transaction.
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1, 'dup')").ok());
  // Everything — DML and SELECT alike — fails until ROLLBACK.
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (3, 'c')").ok());
  EXPECT_FALSE(db_.Execute("SELECT * FROM t").ok());
  Run("ROLLBACK");
  // The poisoned transaction's pre-error work is gone too.
  EXPECT_EQ(CountRows(), 1u);
  Run("INSERT INTO t VALUES (3, 'c')");
  EXPECT_EQ(CountRows(), 2u);
}

TEST_P(TxnSqlTest, ParseErrorPoisonsToo) {
  Run("BEGIN");
  Run("INSERT INTO t VALUES (1, 'a')");
  EXPECT_FALSE(db_.Execute("INSRT INTO t VALUES (2, 'b')").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (2, 'b')").ok());
  Run("ROLLBACK");
  EXPECT_EQ(CountRows(), 0u);
}

TEST_P(TxnSqlTest, CommitOfPoisonedTransactionRollsBack) {
  Run("BEGIN");
  Run("INSERT INTO t VALUES (1, 'a')");
  EXPECT_FALSE(db_.Execute("SELECT * FROM missing").ok());
  ResultSet rs = Run("COMMIT");
  EXPECT_EQ(rs.message, "ROLLBACK");
  EXPECT_EQ(CountRows(), 0u);
  // The transaction is over: a fresh BEGIN works.
  Run("BEGIN");
  Run("INSERT INTO t VALUES (1, 'a')");
  Run("COMMIT");
  EXPECT_EQ(CountRows(), 1u);
}

TEST_P(TxnSqlTest, DdlInsideTransactionRejectedAndPoisons) {
  Run("BEGIN");
  EXPECT_FALSE(db_.Execute("CREATE TABLE u (a INT)").ok());
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1, 'a')").ok());
  Run("ROLLBACK");
  EXPECT_FALSE(db_.catalog().HasTable("u"));
  // Direct-API DDL is gated the same way.
  Run("BEGIN");
  Schema schema;
  ASSERT_TRUE(schema.AddColumn(ColumnDef{"a", DataType::kInt, false}).ok());
  EXPECT_FALSE(db_.CreateTable("u", std::move(schema)).ok());
  Run("ROLLBACK");
}

TEST_P(TxnSqlTest, AutocommitUnchangedOutsideBegin) {
  Run("INSERT INTO t VALUES (1, 'a')");
  EXPECT_FALSE(db_.Execute("INSERT INTO t VALUES (1, 'dup')").ok());
  // No poison without an open transaction: the next statement just runs.
  Run("INSERT INTO t VALUES (2, 'b')");
  EXPECT_EQ(CountRows(), 2u);
}

TEST_P(TxnSqlTest, AbortAliasAndNoiseWords) {
  Run("BEGIN TRANSACTION");
  Run("INSERT INTO t VALUES (1, 'a')");
  ResultSet rs = Run("ABORT");
  EXPECT_EQ(rs.message, "ROLLBACK");
  EXPECT_EQ(CountRows(), 0u);
  Run("BEGIN WORK");
  Run("INSERT INTO t VALUES (1, 'a')");
  Run("COMMIT WORK;");
  EXPECT_EQ(CountRows(), 1u);
  Run("BEGIN");
  Run("DELETE FROM t");
  Run("ROLLBACK TRANSACTION");
  EXPECT_EQ(CountRows(), 1u);
}

TEST_P(TxnSqlTest, RollbackOfManyInterleavedStatements) {
  // A longer tape of mixed DML, rolled back: byte-for-byte restoration.
  for (int i = 0; i < 16; ++i) {
    Run("INSERT INTO t VALUES (" + std::to_string(i) + ", 'v" +
        std::to_string(i) + "')");
  }
  ResultSet before = Run("SELECT id, v FROM t");
  Run("BEGIN");
  for (int i = 0; i < 8; ++i) {
    Run("UPDATE t SET v = 'x' WHERE id = " + std::to_string(2 * i));
    Run("DELETE FROM t WHERE id = " + std::to_string(2 * i + 1));
    Run("INSERT INTO t VALUES (" + std::to_string(100 + i) + ", 'new')");
  }
  Run("ROLLBACK");
  ResultSet after = Run("SELECT id, v FROM t");
  ASSERT_EQ(after.num_rows(), before.num_rows());
  for (size_t r = 0; r < before.num_rows(); ++r) {
    EXPECT_EQ(after.rows[r], before.rows[r]) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(Models, TxnSqlTest,
                         ::testing::Values(StorageModel::kRow,
                                           StorageModel::kColumn,
                                           StorageModel::kRcv,
                                           StorageModel::kHybrid),
                         [](const auto& info) {
                           switch (info.param) {
                             case StorageModel::kRow: return "row";
                             case StorageModel::kColumn: return "column";
                             case StorageModel::kRcv: return "rcv";
                             case StorageModel::kHybrid: return "hybrid";
                           }
                           return "unknown";
                         });

// ---------------------------------------------------------------------------
// Durable-pair behavior: commit barrier placement and reopen
// ---------------------------------------------------------------------------

class TxnDurableTest : public ::testing::Test {
 protected:
  void SetUp() override {
    base_ = ::testing::TempDir() + "txn_sql_durable";
    std::remove((base_ + ".wal").c_str());
    std::remove((base_ + ".pages").c_str());
  }
  std::string base_;
};

TEST_F(TxnDurableTest, CommittedTransactionSurvivesReopen) {
  {
    auto db = Database::Open(base_);
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").ok());
    ASSERT_TRUE(db->Execute("BEGIN").ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (" + std::to_string(i) +
                              ", 'v')").ok());
    }
    ASSERT_TRUE(db->Execute("COMMIT").ok());
  }
  auto db = Database::Open(base_);
  EXPECT_EQ(db->Execute("SELECT * FROM t").ValueOrDie().num_rows(), 10u);
}

TEST_F(TxnDurableTest, OpenTransactionAtCrashVanishesWholesale) {
  {
    auto db = Database::Open(base_);
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (0)").ok());
    db->pager().SyncWal();
    ASSERT_TRUE(db->Execute("BEGIN").ok());
    for (int i = 1; i < 8; ++i) {
      ASSERT_TRUE(
          db->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
    }
    // No COMMIT: simulate a crash mid-transaction.
    db->pager().CrashForTesting();
  }
  auto db = Database::Open(base_);
  // The whole open transaction is gone — not one statement leaked.
  EXPECT_EQ(db->Execute("SELECT * FROM t").ValueOrDie().num_rows(), 1u);
}

TEST_F(TxnDurableTest, RolledBackTransactionIsANetNoOpAcrossReopen) {
  {
    auto db = Database::Open(base_);
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT PRIMARY KEY, v TEXT)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1, 'keep')").ok());
    ASSERT_TRUE(db->Execute("BEGIN").ok());
    ASSERT_TRUE(db->Execute("UPDATE t SET v = 'poof' WHERE id = 1").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (2, 'poof')").ok());
    ASSERT_TRUE(db->Execute("ROLLBACK").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (3, 'after')").ok());
  }
  auto db = Database::Open(base_);
  ResultSet rs = db->Execute("SELECT id, v FROM t ORDER BY id").ValueOrDie();
  ASSERT_EQ(rs.num_rows(), 2u);
  EXPECT_EQ(rs.rows[0][1], Value::Text("keep"));
  EXPECT_EQ(rs.rows[1][0], Value::Int(3));
}

TEST_F(TxnDurableTest, DestructionWithOpenTransactionRollsBack) {
  {
    auto db = Database::Open(base_);
    ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (1)").ok());
    ASSERT_TRUE(db->Execute("BEGIN").ok());
    ASSERT_TRUE(db->Execute("INSERT INTO t VALUES (2)").ok());
    // Clean destruction (checkpoint) with the transaction still open.
  }
  auto db = Database::Open(base_);
  EXPECT_EQ(db->Execute("SELECT * FROM t").ValueOrDie().num_rows(), 1u);
}

// ---------------------------------------------------------------------------
// Deadlock handling: wait-die, deterministic and single-threaded
// ---------------------------------------------------------------------------

/// Two sessions acquire tables A and B in opposite order. No threads are
/// needed: the younger transaction's cross-acquisition hits wait-die
/// *synchronously* (it already holds a latch, so it may not block on the
/// older holder) and is aborted on the spot with a retryable
/// serialization-conflict error. The survivor commits untouched, and the
/// retried victim then succeeds — the canonical deadlock→abort→retry
/// round-trip, with the final state matching a serial execution.
TEST(TxnDeadlockTest, YoungerAbortsRetryableAndSurvivorCommits) {
  Database db;
  ASSERT_TRUE(db.Execute("CREATE TABLE a (id INT PRIMARY KEY, v TEXT)").ok());
  ASSERT_TRUE(db.Execute("CREATE TABLE b (id INT PRIMARY KEY, v TEXT)").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO a VALUES (1, 'a-seed')").ok());
  ASSERT_TRUE(db.Execute("INSERT INTO b VALUES (1, 'b-seed')").ok());
  auto s1 = db.CreateSession();
  auto s2 = db.CreateSession();
  auto run = [](Session* s, const std::string& sql) {
    auto r = s->Execute(sql);
    ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
  };
  run(s1.get(), "BEGIN");  // the older transaction (smaller txn id)
  run(s2.get(), "BEGIN");  // the younger one
  run(s1.get(), "INSERT INTO a VALUES (2, 's1')");  // s1 latches a
  run(s2.get(), "INSERT INTO b VALUES (2, 's2')");  // s2 latches b
  // The cycle's closing edge: s2 (younger, already holding b) asks for a,
  // held by the older s1. Wait-die kills the requester.
  auto conflict = s2->Execute("INSERT INTO a VALUES (3, 's2-boom')");
  ASSERT_FALSE(conflict.ok());
  EXPECT_EQ(conflict.status().code(), StatusCode::kSerializationConflict)
      << conflict.status().ToString();
  // The victim was rolled back immediately — its latch on b is gone and its
  // mutations undone — but the session stays poisoned until ROLLBACK.
  auto poisoned = s2->Execute("SELECT * FROM b");
  EXPECT_FALSE(poisoned.ok());
  // The survivor now takes b without waiting and commits.
  run(s1.get(), "UPDATE b SET v = 's1-was-here' WHERE id = 1");
  run(s1.get(), "COMMIT");
  // The victim acknowledges the abort and retries its whole transaction,
  // which now sails through.
  EXPECT_EQ(s2->Execute("ROLLBACK").ValueOrDie().message, "ROLLBACK");
  run(s2.get(), "BEGIN");
  run(s2.get(), "INSERT INTO b VALUES (2, 's2')");
  run(s2.get(), "INSERT INTO a VALUES (3, 's2-boom')");
  run(s2.get(), "COMMIT");
  // Final state = serial s1-then-s2: s1's insert and update landed, s2's
  // first attempt vanished, its retry landed whole.
  ResultSet a = db.Execute("SELECT id, v FROM a ORDER BY id").ValueOrDie();
  ASSERT_EQ(a.num_rows(), 3u);
  EXPECT_EQ(a.rows[0][1], Value::Text("a-seed"));
  EXPECT_EQ(a.rows[1][1], Value::Text("s1"));
  EXPECT_EQ(a.rows[2][1], Value::Text("s2-boom"));
  ResultSet b = db.Execute("SELECT id, v FROM b ORDER BY id").ValueOrDie();
  ASSERT_EQ(b.num_rows(), 2u);
  EXPECT_EQ(b.rows[0][1], Value::Text("s1-was-here"));
  EXPECT_EQ(b.rows[1][1], Value::Text("s2"));
}

TEST_F(TxnDurableTest, GroupCommitSyncsOnceAtCommit) {
  DatabaseOptions options;
  options.sync_on_commit = true;
  auto db = Database::Open(base_, options);
  ASSERT_TRUE(db->Execute("CREATE TABLE t (id INT PRIMARY KEY)").ok());
  uint64_t before = db->pager().stats().wal_syncs;
  ASSERT_TRUE(db->Execute("BEGIN").ok());
  for (int i = 0; i < 16; ++i) {
    ASSERT_TRUE(
        db->Execute("INSERT INTO t VALUES (" + std::to_string(i) + ")").ok());
  }
  // The member statements take no commit barrier of their own.
  EXPECT_EQ(db->pager().stats().wal_syncs, before);
  ASSERT_TRUE(db->Execute("COMMIT").ok());
  EXPECT_EQ(db->pager().stats().wal_syncs, before + 1);
}

}  // namespace
}  // namespace dataspread
