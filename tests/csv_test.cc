#include <gtest/gtest.h>

#include "core/dataspread.h"
#include "io/csv.h"

namespace dataspread {
namespace {

TEST(CsvParseTest, SimpleRows) {
  auto rows = ParseCsv("a,b,c\n1,2,3\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[0][0], Value::Text("a"));
  EXPECT_EQ(rows[1][0], Value::Int(1));  // dynamic typing
  EXPECT_EQ(rows[1][2], Value::Int(3));
}

TEST(CsvParseTest, NoTrailingNewline) {
  auto rows = ParseCsv("x,y").value();
  ASSERT_EQ(rows.size(), 1u);
  ASSERT_EQ(rows[0].size(), 2u);
}

TEST(CsvParseTest, CrLfTerminators) {
  auto rows = ParseCsv("a,b\r\nc,d\r\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_EQ(rows[1][1], Value::Text("d"));
}

TEST(CsvParseTest, QuotedFields) {
  auto rows = ParseCsv("\"hello, world\",\"line\nbreak\",\"say \"\"hi\"\"\"\n")
                  .value();
  ASSERT_EQ(rows.size(), 1u);
  EXPECT_EQ(rows[0][0], Value::Text("hello, world"));
  EXPECT_EQ(rows[0][1], Value::Text("line\nbreak"));
  EXPECT_EQ(rows[0][2], Value::Text("say \"hi\""));
}

TEST(CsvParseTest, QuotedNumbersStayText) {
  auto rows = ParseCsv("\"42\",42\n").value();
  EXPECT_EQ(rows[0][0], Value::Text("42"));
  EXPECT_EQ(rows[0][1], Value::Int(42));
}

TEST(CsvParseTest, EmptyFieldsAreNull) {
  auto rows = ParseCsv("1,,3\n,,\n").value();
  ASSERT_EQ(rows.size(), 2u);
  EXPECT_TRUE(rows[0][1].is_null());
  EXPECT_TRUE(rows[1][0].is_null());
  EXPECT_EQ(rows[1].size(), 3u);
}

TEST(CsvParseTest, CustomDelimiter) {
  auto rows = ParseCsv("a;b\n1;2\n", ';').value();
  EXPECT_EQ(rows[1][1], Value::Int(2));
}

TEST(CsvParseTest, UnterminatedQuoteIsError) {
  EXPECT_FALSE(ParseCsv("\"open").ok());
}

TEST(CsvWriteTest, QuotesWhenNeeded) {
  std::vector<Row> rows{{Value::Text("a,b"), Value::Int(1),
                         Value::Text("q\"q"), Value::Null()}};
  EXPECT_EQ(WriteCsv(rows), "\"a,b\",1,\"q\"\"q\",\n");
}

TEST(CsvWriteTest, RoundTripPreservesValues) {
  std::vector<Row> rows{
      {Value::Int(1), Value::Text("plain"), Value::Real(2.5)},
      {Value::Bool(true), Value::Text("with,comma"), Value::Null()},
  };
  auto back = ParseCsv(WriteCsv(rows)).value();
  ASSERT_EQ(back.size(), 2u);
  EXPECT_EQ(back[0][0], Value::Int(1));
  EXPECT_EQ(back[0][2], Value::Real(2.5));
  EXPECT_EQ(back[1][0], Value::Bool(true));
  EXPECT_EQ(back[1][1], Value::Text("with,comma"));
  EXPECT_TRUE(back[1][2].is_null());
}

TEST(CsvFacadeTest, ImportCsvIntoSheet) {
  DataSpread ds;
  (void)ds.AddSheet("S").ValueOrDie();
  ASSERT_TRUE(ds.ImportCsv("S", "B2", "x,y\n1,2\n3,4\n").ok());
  EXPECT_EQ(ds.GetValue("S", "B2").value(), Value::Text("x"));
  EXPECT_EQ(ds.GetValue("S", "C4").value(), Value::Int(4));
  // Formulas see imported data.
  ASSERT_TRUE(ds.SetCell("S", "E1", "=SUM(B3:C4)").ok());
  EXPECT_EQ(ds.GetValue("S", "E1").value(), Value::Real(10.0));
}

TEST(CsvFacadeTest, ImportCsvAsTable) {
  DataSpread ds;
  auto table = ds.ImportCsvAsTable(
      "id,name,score\n1,ann,3.5\n2,bob,4\n", "students", "id");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->num_rows(), 2u);
  EXPECT_EQ(table.value()->schema().column(2).type, DataType::kReal);
  auto rs = ds.Sql("SELECT name FROM students WHERE score > 3.6");
  ASSERT_EQ(rs.value().num_rows(), 1u);
  EXPECT_EQ(rs.value().rows[0][0], Value::Text("bob"));
}

TEST(CsvFacadeTest, ImportCsvAsTableRejectsDuplicateKeys) {
  DataSpread ds;
  auto table = ds.ImportCsvAsTable("id,v\n1,a\n1,b\n", "dup", "id");
  EXPECT_FALSE(table.ok());
  EXPECT_FALSE(ds.db().catalog().HasTable("dup"));  // cleaned up
}

TEST(CsvFacadeTest, RaggedCsvPadsWithNulls) {
  DataSpread ds;
  auto table = ds.ImportCsvAsTable("a,b,c\n1,2\n", "ragged");
  ASSERT_TRUE(table.ok());
  auto rs = ds.Sql("SELECT c FROM ragged");
  EXPECT_TRUE(rs.value().rows[0][0].is_null());
}

TEST(CsvFacadeTest, ExportCsvRoundTrip) {
  DataSpread ds;
  (void)ds.AddSheet("S").ValueOrDie();
  ASSERT_TRUE(ds.SetCell("S", "A1", "n").ok());
  ASSERT_TRUE(ds.SetCell("S", "A2", "1").ok());
  ASSERT_TRUE(ds.SetCell("S", "B1", "label").ok());
  ASSERT_TRUE(ds.SetCell("S", "B2", "two words").ok());
  auto csv = ds.ExportCsv("S", "A1:B2");
  ASSERT_TRUE(csv.ok());
  EXPECT_EQ(csv.value(), "n,label\n1,two words\n");
  // Full loop: export -> import into a table -> query.
  ASSERT_TRUE(ds.ImportCsvAsTable(csv.value(), "loop").ok());
  auto rs = ds.Sql("SELECT label FROM loop WHERE n = 1");
  EXPECT_EQ(rs.value().rows[0][0], Value::Text("two words"));
}

}  // namespace
}  // namespace dataspread
