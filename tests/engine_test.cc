#include <gtest/gtest.h>

#include "formula/engine.h"
#include "sheet/workbook.h"

namespace dataspread::formula {
namespace {

class EngineTest : public ::testing::Test {
 protected:
  EngineTest() : engine_(&workbook_) {
    sheet_ = workbook_.AddSheet("S").ValueOrDie();
    engine_.AttachSheet(sheet_);
  }

  void Set(int64_t row, int64_t col, const std::string& input) {
    if (!input.empty() && input[0] == '=') {
      ASSERT_TRUE(sheet_->SetFormula(row, col, input).ok());
    } else {
      ASSERT_TRUE(sheet_->SetValue(row, col, Value::FromUserInput(input)).ok());
    }
  }

  void Recalc() { ASSERT_TRUE(engine_.RecalcDirty().ok()); }

  Value At(int64_t row, int64_t col) { return sheet_->GetValue(row, col); }

  Workbook workbook_;
  Sheet* sheet_;
  FormulaEngine engine_;
};

TEST_F(EngineTest, SimpleArithmetic) {
  Set(0, 0, "=1+2*3");
  Recalc();
  EXPECT_EQ(At(0, 0), Value::Int(7));
}

TEST_F(EngineTest, CellReferencesAndPropagation) {
  Set(0, 0, "5");          // A1
  Set(0, 1, "=A1*2");      // B1
  Set(0, 2, "=B1+1");      // C1
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Int(10));
  EXPECT_EQ(At(0, 2), Value::Int(11));
  // Edit the root; both dependents recompute.
  Set(0, 0, "7");
  EXPECT_EQ(engine_.dirty_count(), 1u);
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Int(14));
  EXPECT_EQ(At(0, 2), Value::Int(15));
}

TEST_F(EngineTest, RangeAggregation) {
  for (int i = 0; i < 10; ++i) Set(i, 0, std::to_string(i + 1));
  Set(0, 1, "=SUM(A1:A10)");
  Set(1, 1, "=AVERAGE(A1:A10)");
  Set(2, 1, "=COUNTIF(A1:A10,\">5\")");
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Real(55.0));
  EXPECT_EQ(At(1, 1), Value::Real(5.5));
  EXPECT_EQ(At(2, 1), Value::Int(5));
  // Range dependency: changing one member re-dirties the aggregate.
  Set(4, 0, "100");
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Real(150.0));
}

TEST_F(EngineTest, EmptyCellsActAsZeroInArithmetic) {
  Set(0, 1, "=A1+5");
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Int(5));
}

TEST_F(EngineTest, DivisionByZeroAndPropagation) {
  Set(0, 0, "=1/0");
  Set(0, 1, "=A1+1");
  Recalc();
  EXPECT_EQ(At(0, 0), Value::Error("#DIV/0!"));
  EXPECT_EQ(At(0, 1), Value::Error("#DIV/0!"));
  // IFERROR rescues.
  Set(0, 2, "=IFERROR(A1, -1)");
  Recalc();
  EXPECT_EQ(At(0, 2), Value::Int(-1));
}

TEST_F(EngineTest, CycleDetection) {
  Set(0, 0, "=B1+1");
  Set(0, 1, "=A1+1");
  Recalc();
  EXPECT_EQ(At(0, 0), Value::Error("#CYCLE!"));
  EXPECT_EQ(At(0, 1), Value::Error("#CYCLE!"));
  // Self-reference.
  Set(1, 0, "=A2");
  Recalc();
  EXPECT_EQ(At(1, 0), Value::Error("#CYCLE!"));
  // Breaking the cycle heals it.
  Set(0, 1, "3");
  Recalc();
  EXPECT_EQ(At(0, 0), Value::Int(4));
}

TEST_F(EngineTest, DiamondDependencyEvaluatesOnce) {
  Set(0, 0, "1");            // A1
  Set(0, 1, "=A1+1");        // B1
  Set(0, 2, "=A1+2");        // C1
  Set(0, 3, "=B1+C1");       // D1
  Recalc();
  EXPECT_EQ(At(0, 3), Value::Int(5));
  uint64_t before = engine_.cells_evaluated();
  Set(0, 0, "10");
  Recalc();
  EXPECT_EQ(At(0, 3), Value::Int(23));
  EXPECT_EQ(engine_.cells_evaluated() - before, 3u);  // B1, C1, D1 once each
}

TEST_F(EngineTest, MalformedFormulaShowsNameError) {
  Set(0, 0, "=SUM(");
  Recalc();
  EXPECT_EQ(At(0, 0), Value::Error("#NAME?"));
}

TEST_F(EngineTest, UnknownSheetReference) {
  Set(0, 0, "=Ghost!A1");
  Recalc();
  EXPECT_EQ(At(0, 0), Value::Error("#REF!"));
}

TEST_F(EngineTest, CrossSheetReferences) {
  Sheet* data = workbook_.AddSheet("Data").ValueOrDie();
  engine_.AttachSheet(data);
  ASSERT_TRUE(data->SetValue(0, 0, Value::Int(21)).ok());
  Set(0, 0, "=Data!A1*2");
  Recalc();
  EXPECT_EQ(At(0, 0), Value::Int(42));
  // Edits on the other sheet propagate across.
  ASSERT_TRUE(data->SetValue(0, 0, Value::Int(5)).ok());
  Recalc();
  EXPECT_EQ(At(0, 0), Value::Int(10));
}

TEST_F(EngineTest, ReplacingFormulaWithValueDropsDependencies) {
  Set(0, 0, "1");
  Set(0, 1, "=A1");
  Recalc();
  EXPECT_EQ(engine_.formula_count(), 1u);
  Set(0, 1, "9");  // plain value now
  Recalc();
  EXPECT_EQ(engine_.formula_count(), 0u);
  Set(0, 0, "2");
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Int(9));  // no recompute
}

TEST_F(EngineTest, InsertRowsAdjustsReferencesAndText) {
  Set(4, 0, "8");           // A5
  Set(0, 1, "=A5*2");       // B1
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Int(16));
  ASSERT_TRUE(sheet_->InsertRows(2, 3).ok());
  // The referenced cell moved to A8; the formula text must follow.
  EXPECT_EQ(sheet_->GetCell(0, 1)->formula, "=A8*2");
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Int(16));
  // The moved data is still reachable.
  EXPECT_EQ(At(7, 0), Value::Int(8));
}

TEST_F(EngineTest, DeleteRowsMakesRefErrors) {
  Set(4, 0, "8");       // A5
  Set(0, 1, "=A5*2");   // B1
  Recalc();
  ASSERT_TRUE(sheet_->DeleteRows(4, 1).ok());
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Error("#REF!"));
  EXPECT_EQ(sheet_->GetCell(0, 1)->formula, "=#REF!*2");
}

TEST_F(EngineTest, RangeShrinksWhenRowsDeleted) {
  for (int i = 0; i < 5; ++i) Set(i, 0, "1");  // A1:A5 all ones
  Set(0, 1, "=SUM(A1:A5)");
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Real(5.0));
  ASSERT_TRUE(sheet_->DeleteRows(1, 2).ok());
  EXPECT_EQ(sheet_->GetCell(0, 1)->formula, "=SUM(A1:A3)");
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Real(3.0));
}

TEST_F(EngineTest, RangeGrowsWhenRowsInsertedInside) {
  Set(0, 0, "1");
  Set(1, 0, "2");
  Set(0, 1, "=SUM(A1:A2)");
  Recalc();
  ASSERT_TRUE(sheet_->InsertRows(1, 1).ok());
  EXPECT_EQ(sheet_->GetCell(0, 1)->formula, "=SUM(A1:A3)");
  Set(1, 0, "10");  // fill the inserted row
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Real(13.0));
}

TEST_F(EngineTest, FormulaCellsThemselvesShiftOnInsert) {
  Set(0, 0, "3");
  Set(5, 0, "=A1*3");  // A6
  Recalc();
  ASSERT_TRUE(sheet_->InsertRows(2, 2).ok());
  // The formula cell moved to A8 and still works.
  EXPECT_EQ(At(7, 0), Value::Int(9));
  Set(0, 0, "4");
  Recalc();
  EXPECT_EQ(At(7, 0), Value::Int(12));
}

TEST_F(EngineTest, RecalcWindowOnlyComputesNeededCells) {
  // 100 independent chains; window covers only the first.
  for (int r = 0; r < 100; ++r) {
    Set(r, 0, std::to_string(r));
    Set(r, 1, "=A" + std::to_string(r + 1) + "*2");
  }
  ASSERT_TRUE(engine_.RecalcWindow(sheet_, 0, 0, 0, 3).ok());
  EXPECT_EQ(At(0, 1), Value::Int(0));
  EXPECT_GT(engine_.dirty_count(), 0u);  // the other 99 remain queued
  Recalc();
  EXPECT_EQ(engine_.dirty_count(), 0u);
  EXPECT_EQ(At(99, 1), Value::Int(198));
}

TEST_F(EngineTest, RecalcWindowPullsDirtyPrecedentsOutsideWindow) {
  Set(50, 0, "5");            // A51 (outside window)
  Set(0, 0, "=A51*2");        // A1 (inside window)
  ASSERT_TRUE(engine_.RecalcWindow(sheet_, 0, 0, 5, 5).ok());
  EXPECT_EQ(At(0, 0), Value::Int(10));
}

TEST_F(EngineTest, EvaluateImmediate) {
  Set(0, 0, "6");
  EXPECT_EQ(engine_.EvaluateImmediate(sheet_, "=A1*7", 0, 1).value(),
            Value::Int(42));
  EXPECT_FALSE(engine_.EvaluateImmediate(sheet_, "=(", 0, 1).ok());
}

TEST_F(EngineTest, StringOpsAndComparisons) {
  Set(0, 0, "hello");
  Set(0, 1, "=A1&\" world\"");
  Set(0, 2, "=A1=\"hello\"");
  Set(0, 3, "=2>1");
  Recalc();
  EXPECT_EQ(At(0, 1), Value::Text("hello world"));
  EXPECT_EQ(At(0, 2), Value::Bool(true));
  EXPECT_EQ(At(0, 3), Value::Bool(true));
}

TEST_F(EngineTest, VlookupOverSheetRange) {
  Set(0, 0, "1");
  Set(0, 1, "ann");
  Set(1, 0, "2");
  Set(1, 1, "bob");
  Set(0, 3, "=VLOOKUP(2, A1:B2, 2)");
  Recalc();
  EXPECT_EQ(At(0, 3), Value::Text("bob"));
}

}  // namespace
}  // namespace dataspread::formula
