#include <gtest/gtest.h>

#include "common/result.h"
#include "common/status.h"
#include "common/str_util.h"

namespace dataspread {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoryCarriesCodeAndMessage) {
  Status s = Status::NotFound("table foo");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.message(), "table foo");
  EXPECT_EQ(s.ToString(), "NotFound: table foo");
}

TEST(StatusTest, AllCodesHaveNames) {
  for (StatusCode code :
       {StatusCode::kOk, StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kAlreadyExists, StatusCode::kOutOfRange,
        StatusCode::kParseError, StatusCode::kTypeError,
        StatusCode::kConstraintViolation, StatusCode::kCycleDetected,
        StatusCode::kUnimplemented, StatusCode::kInternal}) {
    EXPECT_STRNE(StatusCodeName(code), "Unknown");
  }
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("x"), Status::NotFound("x"));
  EXPECT_FALSE(Status::NotFound("x") == Status::NotFound("y"));
}

Result<int> ParsePositive(int v) {
  if (v <= 0) return Status::InvalidArgument("not positive");
  return v;
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = ParsePositive(7);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 7);
  EXPECT_EQ(r.ValueOr(-1), 7);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = ParsePositive(-1);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(ResultTest, OkStatusIsRejected) {
  Result<int> r = Status::OK();
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInternal);
}

Result<int> Doubler(int v) {
  DS_ASSIGN_OR_RETURN(int x, ParsePositive(v));
  return x * 2;
}

TEST(ResultTest, AssignOrReturnPropagates) {
  EXPECT_EQ(Doubler(4).value(), 8);
  EXPECT_FALSE(Doubler(-4).ok());
}

TEST(StrUtilTest, CaseConversion) {
  EXPECT_EQ(ToLower("AbC"), "abc");
  EXPECT_EQ(ToUpper("AbC"), "ABC");
  EXPECT_TRUE(EqualsIgnoreCase("Movies", "MOVIES"));
  EXPECT_FALSE(EqualsIgnoreCase("Movies", "Movie"));
  EXPECT_FALSE(EqualsIgnoreCase("ab", "abc"));
}

TEST(StrUtilTest, Trim) {
  EXPECT_EQ(Trim("  x y  "), "x y");
  EXPECT_EQ(Trim("\t\n"), "");
  EXPECT_EQ(Trim(""), "");
}

TEST(StrUtilTest, SplitAndJoin) {
  auto parts = Split("a,b,,c", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[2], "");
  EXPECT_EQ(Join(parts, "|"), "a|b||c");
  EXPECT_EQ(Split("", ',').size(), 1u);
}

TEST(StrUtilTest, ParseInt64Strict) {
  EXPECT_EQ(ParseInt64("42").value_or(0), 42);
  EXPECT_EQ(ParseInt64("-7").value_or(0), -7);
  EXPECT_EQ(ParseInt64("+9").value_or(0), 9);
  EXPECT_FALSE(ParseInt64("4.2").has_value());
  EXPECT_FALSE(ParseInt64("42x").has_value());
  EXPECT_FALSE(ParseInt64("").has_value());
  EXPECT_EQ(ParseInt64(" 13 ").value_or(0), 13);  // surrounding whitespace ok
}

TEST(StrUtilTest, ParseDoubleStrict) {
  EXPECT_DOUBLE_EQ(ParseDouble("1.5").value_or(0), 1.5);
  EXPECT_DOUBLE_EQ(ParseDouble("-2e3").value_or(0), -2000.0);
  EXPECT_FALSE(ParseDouble("1.5.2").has_value());
  EXPECT_FALSE(ParseDouble("abc").has_value());
}

TEST(StrUtilTest, FormatDoubleRoundTripsAndDropsTrailingZero) {
  EXPECT_EQ(FormatDouble(3.0), "3");
  EXPECT_EQ(FormatDouble(-42.0), "-42");
  EXPECT_EQ(FormatDouble(0.5), "0.5");
  double tricky = 0.1 + 0.2;
  EXPECT_DOUBLE_EQ(ParseDouble(FormatDouble(tricky)).value_or(0), tricky);
}

}  // namespace
}  // namespace dataspread
