// The disk-backed half of the bounded buffer pool (DESIGN.md §"Bounded
// buffer pool"): spill-file round trips, the fault path, eviction policy
// invariants (pinned pages stay, the cap holds), FlushAll-as-checkpoint, and
// a randomized shadow-model stress test. The headline acceptance check —
// a million-row row-store scan under a 256-frame pool — is at the bottom.
#include <gtest/gtest.h>

#include <cstdio>
#include <random>
#include <string>
#include <vector>

#include "storage/page_cursor.h"
#include "storage/pager.h"
#include "storage/spill_file.h"
#include "storage/table_storage.h"

namespace dataspread {
namespace {

using storage::FileId;
using storage::Pager;
using storage::PagerConfig;
using storage::SpillFile;
using storage::ValuePage;

constexpr uint64_t kSlots = Pager::kSlotsPerPage;

PagerConfig Bounded(size_t cap) {
  PagerConfig config;
  config.max_resident_pages = cap;
  return config;
}

/// A value whose type and payload are a deterministic function of its slot,
/// mixing every serializable type (incl. TEXT of varying length and ERROR).
Value ProbeValue(uint64_t seed) {
  switch (seed % 6) {
    case 0:
      return Value::Int(static_cast<int64_t>(seed) * 31 - 7);
    case 1:
      return Value::Real(static_cast<double>(seed) / 3.0);
    case 2:
      return Value::Bool(seed % 2 == 0);
    case 3:
      return Value::Text(std::string(seed % 40, 'x') + std::to_string(seed));
    case 4:
      return Value::Null();
    default:
      return Value::Error("#E" + std::to_string(seed % 9) + "!");
  }
}

// ---------------------------------------------------------------------------
// SpillFile: binary page serialization
// ---------------------------------------------------------------------------

TEST(SpillFileTest, EncodeDecodeRoundTripsEveryValueType) {
  ValuePage page;
  for (size_t i = 0; i < ValuePage::kSlotCount; ++i) {
    page.slot(i) = ProbeValue(i);
  }
  std::string buf;
  SpillFile::EncodePage(page, &buf);
  ValuePage back;
  ASSERT_TRUE(SpillFile::DecodePage(buf, &back));
  for (size_t i = 0; i < ValuePage::kSlotCount; ++i) {
    EXPECT_EQ(back.slot(i), page.slot(i)) << "slot " << i;
    EXPECT_EQ(back.slot(i).type(), page.slot(i).type()) << "slot " << i;
  }
}

TEST(SpillFileTest, DecodeRejectsTruncatedAndTrailingGarbage) {
  ValuePage page;
  page.slot(0) = Value::Text("payload");
  std::string buf;
  SpillFile::EncodePage(page, &buf);
  ValuePage back;
  std::string truncated = buf.substr(0, buf.size() - 1);
  EXPECT_FALSE(SpillFile::DecodePage(truncated, &back));
  std::string padded = buf + "zz";
  EXPECT_FALSE(SpillFile::DecodePage(padded, &back));
}

TEST(SpillFileTest, SlotsRewriteInPlaceAndRecycle) {
  SpillFile spill;
  ValuePage page;
  for (size_t i = 0; i < ValuePage::kSlotCount; ++i) {
    page.slot(i) = Value::Int(static_cast<int64_t>(i));
  }
  uint64_t a = spill.AllocateSlot();
  uint64_t bytes = spill.WritePage(a, page);
  uint64_t heap_after_first = spill.heap_bytes();
  // Fixed-width re-encodings reuse the reserved space: no heap growth.
  EXPECT_EQ(spill.WritePage(a, page), bytes);
  EXPECT_EQ(spill.heap_bytes(), heap_after_first);
  ValuePage back;
  spill.ReadPage(a, &back);
  EXPECT_EQ(back.slot(255), Value::Int(255));
  // Freed slots are recycled by the next allocation.
  spill.FreeSlot(a);
  EXPECT_EQ(spill.AllocateSlot(), a);
  EXPECT_EQ(spill.live_slots(), 1u);
}

// ---------------------------------------------------------------------------
// Fault path: evicted pages come back bit-identical
// ---------------------------------------------------------------------------

TEST(EvictionTest, FaultInRoundTripsThroughTheSpillFile) {
  Pager pager(Bounded(2));
  FileId f = pager.CreateFile();
  constexpr uint64_t kPages = 6;
  for (uint64_t s = 0; s < kPages * kSlots; ++s) {
    pager.Write(f, s, ProbeValue(s));
  }
  // Writing 6 pages through a 2-frame pool must have evicted and spilled.
  EXPECT_EQ(pager.resident_pages(), 2u);
  EXPECT_GE(pager.stats().evictions, kPages - 2);
  EXPECT_GT(pager.stats().spill_bytes_written, 0u);
  EXPECT_EQ(pager.FilePages(f), kPages);  // logical chain is intact

  for (uint64_t s = 0; s < kPages * kSlots; ++s) {
    ASSERT_EQ(pager.Read(f, s), ProbeValue(s)) << "slot " << s;
  }
  EXPECT_GT(pager.stats().faults, 0u);
  EXPECT_GT(pager.stats().spill_bytes_read, 0u);
  EXPECT_EQ(pager.resident_pages(), 2u);
}

TEST(EvictionTest, DirtyWriteBackPreservesUpdatesAcrossEvictions) {
  Pager pager(Bounded(2));
  FileId f = pager.CreateFile();
  pager.Write(f, 0, Value::Text("v1"));
  // Push page 0 out, update it after fault-in, push it out again.
  for (int round = 0; round < 3; ++round) {
    for (uint64_t p = 1; p <= 4; ++p) pager.Write(f, p * kSlots, Value::Int(1));
    ASSERT_FALSE(pager.IsResident(f, 0)) << "round " << round;
    pager.Write(f, 0, Value::Text("v" + std::to_string(round + 2)));
  }
  for (uint64_t p = 1; p <= 4; ++p) pager.Write(f, p * kSlots, Value::Int(2));
  EXPECT_FALSE(pager.IsResident(f, 0));
  EXPECT_EQ(pager.Read(f, 0), Value::Text("v4"));
}

// Regression: Take() nulls a slot, which is a mutation. A clean-looking page
// with an existing spill copy would skip write-back on eviction and the next
// fault-in would resurrect the taken value from the stale record.
TEST(EvictionTest, TakenValuesStayGoneAcrossEviction) {
  Pager pager(Bounded(1));
  FileId f = pager.CreateFile();
  pager.Write(f, 0, Value::Text("moved out"));
  pager.Write(f, kSlots, Value::Int(1));  // page 0 evicted dirty -> spilled
  EXPECT_EQ(pager.Read(f, 0), Value::Text("moved out"));  // faults in clean
  EXPECT_EQ(pager.Take(f, 0), Value::Text("moved out"));
  pager.Write(f, kSlots, Value::Int(2));  // evicts page 0 again
  ASSERT_FALSE(pager.IsResident(f, 0));
  EXPECT_TRUE(pager.Read(f, 0).is_null())
      << "taken value must not be resurrected from a stale spill copy";
}

TEST(EvictionTest, ReadRangeWiderThanThePoolFaultsPageByPage) {
  Pager pager(Bounded(3));
  FileId f = pager.CreateFile();
  constexpr uint64_t kCount = 8 * kSlots;
  for (uint64_t s = 0; s < kCount; ++s) {
    pager.Write(f, s, Value::Int(static_cast<int64_t>(s)));
  }
  Row out;
  pager.ReadRange(f, 0, kCount, &out);
  ASSERT_EQ(out.size(), kCount);
  for (uint64_t s = 0; s < kCount; ++s) {
    ASSERT_EQ(out[s], Value::Int(static_cast<int64_t>(s))) << "slot " << s;
  }
  EXPECT_LE(pager.resident_pages(), 3u);
}

// Satellite regression: a range that *starts* on a resident page but is
// wider than the pool — the pages in the middle get evicted and re-faulted
// while the read is in flight, including the very page the range started on.
TEST(EvictionTest, ReadRangeStartingResidentSurvivesMidReadEviction) {
  Pager pager(Bounded(2));
  FileId f = pager.CreateFile();
  constexpr uint64_t kCount = 6 * kSlots;
  for (uint64_t s = 0; s < kCount; ++s) {
    pager.Write(f, s, ProbeValue(s * 7));
  }
  // Make page 0 resident again (the sequential load left the tail resident).
  ASSERT_EQ(pager.Read(f, 3), ProbeValue(21));
  ASSERT_TRUE(pager.IsResident(f, 0));
  uint64_t faults_before = pager.stats().faults;
  Row out;
  pager.ReadRange(f, 0, kCount, &out);
  ASSERT_EQ(out.size(), kCount);
  for (uint64_t s = 0; s < kCount; ++s) {
    ASSERT_EQ(out[s], ProbeValue(s * 7)) << "slot " << s;
  }
  // The middle pages were not resident: the range genuinely faulted.
  EXPECT_GT(pager.stats().faults, faults_before);
  EXPECT_LE(pager.resident_pages(), 2u);
}

// ---------------------------------------------------------------------------
// Scan resistance: sequential streams must not flush the hot set
// ---------------------------------------------------------------------------

// The tentpole regression: point-lookup pages stay resident — zero new hot
// faults — while a scan many times the pool size streams past. With the
// scan-resistant ring disabled (the PR 2 clock-only policy) the same
// workload flushes the hot set, which is exactly what the policy exists to
// prevent; both halves are asserted so the A/B can never silently invert.
TEST(ScanResistanceTest, FullScanLeavesHotPagesResident) {
  constexpr size_t kCap = 32;
  constexpr uint64_t kHotPages = 8;
  constexpr uint64_t kScanPages = 200;
  auto run = [&](bool scan_resistant) {
    PagerConfig config = Bounded(kCap);
    config.scan_resistant = scan_resistant;
    config.readahead = scan_resistant;
    Pager pager(config);
    FileId hot = pager.CreateFile();
    FileId cold = pager.CreateFile();
    for (uint64_t p = 0; p < kHotPages; ++p) {
      pager.Write(hot, p * kSlots, Value::Int(static_cast<int64_t>(p)));
    }
    for (uint64_t s = 0; s < kScanPages * kSlots; ++s) {
      pager.Write(cold, s, Value::Int(static_cast<int64_t>(s)));
    }
    // Warm the hot set with point reads (random-ish order: no streak).
    const uint64_t probe[] = {3, 0, 6, 1, 7, 2, 5, 4};
    for (uint64_t p : probe) (void)pager.Read(hot, p * kSlots);
    for (uint64_t p = 0; p < kHotPages; ++p) {
      EXPECT_TRUE(pager.IsResident(hot, p)) << "hot page " << p;
    }
    uint64_t hot_faults = 0;
    storage::PageCursor cursor(pager, cold);
    for (uint64_t s = 0; s < kScanPages * kSlots; ++s) {
      (void)cursor.Read(s);
      // Probe sparsely (every 64 scanned pages): sparse enough that the
      // clock hand wraps several times in between — which is what flushes
      // the hot set under the baseline policy — while the scan-resistant
      // ring must keep it resident regardless of probe cadence.
      if (s % (64 * kSlots) == 0) {
        // Interleaved point lookups keep the hot set referenced, like the
        // pane fills the paper's workload interleaves with scrolling.
        uint64_t before = pager.stats().faults;
        for (uint64_t p : probe) (void)pager.Read(hot, p * kSlots);
        hot_faults += pager.stats().faults - before;
      }
    }
    return hot_faults;
  };
  EXPECT_EQ(run(/*scan_resistant=*/true), 0u)
      << "scan-resistant eviction must keep the hot set resident";
  EXPECT_GT(run(/*scan_resistant=*/false), 0u)
      << "the clock-only baseline is expected to flush the hot set; if it "
         "stopped doing so this A/B no longer tests anything";
}

TEST(ScanResistanceTest, ScanPagesRecycleThroughTheRingNotThePool) {
  // A pure sequential scan through a roomy pool must not fill it: scan-class
  // pages are capped by the ring, leaving the rest of the pool for hot data.
  PagerConfig config = Bounded(64);
  config.scan_ring_pages = 6;
  Pager pager(config);
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < 40 * kSlots; ++s) {
    pager.Write(f, s, Value::Int(static_cast<int64_t>(s)));
    EXPECT_LE(pager.scan_resident_pages(), 6u) << "slot " << s;
  }
  // The sequential append was itself a scan-class stream: far fewer than 40
  // pages stayed resident.
  EXPECT_LE(pager.resident_pages(), 10u);
  EXPECT_GT(pager.stats().scan_evictions, 0u);
}

TEST(ScanResistanceTest, PointAccessPromotesScanPagesToTheHotSet) {
  Pager pager(Bounded(16));
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < 12 * kSlots; ++s) {
    pager.Write(f, s, Value::Int(1));  // sequential: scan-class mounts
  }
  // Find a resident scan page and promote it with a point lookup pattern
  // (jump → not sequential).
  uint64_t target = ~0ull;
  for (uint64_t p = 0; p < 12; ++p) {
    if (pager.IsScanClass(f, p)) {
      target = p;
      break;
    }
  }
  ASSERT_NE(target, ~0ull) << "expected at least one resident scan page";
  size_t scan_before = pager.scan_resident_pages();
  (void)pager.Read(f, target * kSlots + 5);
  (void)pager.Read(f, 0);  // a second jump so no +1 streak forms
  EXPECT_FALSE(pager.IsScanClass(f, target));
  EXPECT_EQ(pager.scan_resident_pages(), scan_before - 1);
}

TEST(ScanResistanceTest, SequentialCursorFaultsTriggerReadahead) {
  Pager pager(Bounded(8));
  FileId f = pager.CreateFile();
  constexpr uint64_t kPages = 30;
  for (uint64_t s = 0; s < kPages * kSlots; ++s) {
    pager.Write(f, s, ProbeValue(s));
  }
  uint64_t faults_before = pager.stats().faults;
  ASSERT_EQ(pager.stats().readaheads, 0u);
  storage::PageCursor cursor(pager, f);
  for (uint64_t s = 0; s < kPages * kSlots; ++s) {
    ASSERT_EQ(cursor.Read(s), ProbeValue(s)) << "slot " << s;
  }
  // Readahead absorbed a large share of what would have been demand faults.
  EXPECT_GT(pager.stats().readaheads, 0u);
  uint64_t demand = pager.stats().faults - faults_before;
  EXPECT_LT(demand, kPages);  // without readahead every cold page = 1 fault
  EXPECT_GE(demand + pager.stats().readaheads, kPages - 8);
  EXPECT_LE(pager.resident_pages(), 8u);
}

// ---------------------------------------------------------------------------
// Eviction policy invariants
// ---------------------------------------------------------------------------

TEST(EvictionTest, PinnedPagesAreNeverEvicted) {
  Pager pager(Bounded(2));
  FileId f = pager.CreateFile();
  ValuePage* pinned = pager.Pin(f, 0);
  pinned->slot(7) = Value::Text("pinned payload");
  for (uint64_t p = 1; p <= 12; ++p) {
    pager.Write(f, p * kSlots, Value::Int(static_cast<int64_t>(p)));
    // The pinned frame survives every eviction round, in place.
    ASSERT_TRUE(pager.IsResident(f, 0));
    ASSERT_EQ(pinned->file(), f);
    ASSERT_EQ(pinned->index_in_file(), 0u);
    ASSERT_LE(pager.resident_pages(), 2u);
  }
  EXPECT_EQ(pinned->slot(7), Value::Text("pinned payload"));
  pager.Unpin(pinned, /*dirtied=*/true);
  // Unpinned now: the next pressure wave may evict it — and must preserve it.
  for (uint64_t p = 1; p <= 4; ++p) {
    pager.Write(f, p * kSlots, Value::Int(-1));
  }
  EXPECT_EQ(pager.Read(f, 7), Value::Text("pinned payload"));
}

TEST(EvictionTest, AllPinnedPoolOvershootsCapRatherThanEvict) {
  Pager pager(Bounded(2));
  FileId f = pager.CreateFile();
  ValuePage* p0 = pager.Pin(f, 0);
  ValuePage* p1 = pager.Pin(f, 1);
  EXPECT_EQ(pager.resident_pages(), 2u);
  // No unpinned victim exists; the pool must overshoot, not evict a pin.
  pager.Write(f, 2 * kSlots, Value::Int(42));
  EXPECT_EQ(pager.resident_pages(), 3u);
  EXPECT_EQ(pager.pinned_pages(), 2u);
  EXPECT_TRUE(pager.IsResident(f, 0));
  EXPECT_TRUE(pager.IsResident(f, 1));
  // Releasing the pins lets the overshoot drain at the next cap enforcement.
  pager.Unpin(p0, false);
  pager.Unpin(p1, false);
  pager.set_max_resident_pages(2);
  EXPECT_EQ(pager.resident_pages(), 2u);
  EXPECT_EQ(pager.Read(f, 2 * kSlots), Value::Int(42));
}

TEST(EvictionTest, CapIsRespectedThroughoutWritesAndRandomReads) {
  Pager pager(Bounded(4));
  FileId f = pager.CreateFile();
  constexpr uint64_t kPages = 20;
  for (uint64_t s = 0; s < kPages * kSlots; ++s) {
    pager.Write(f, s, ProbeValue(s * 13));
    ASSERT_LE(pager.resident_pages(), 4u) << "during write of slot " << s;
  }
  std::mt19937 rng(71);
  for (int i = 0; i < 2000; ++i) {
    uint64_t s = rng() % (kPages * kSlots);
    ASSERT_EQ(pager.Read(f, s), ProbeValue(s * 13)) << "slot " << s;
    ASSERT_LE(pager.resident_pages(), 4u);
  }
}

TEST(EvictionTest, ShrinkingTheCapEvictsImmediately) {
  Pager pager(Bounded(0));  // start unbounded
  FileId f = pager.CreateFile();
  for (uint64_t p = 0; p < 10; ++p) {
    pager.Write(f, p * kSlots, Value::Int(static_cast<int64_t>(p)));
  }
  EXPECT_EQ(pager.resident_pages(), 10u);
  pager.set_max_resident_pages(3);
  EXPECT_EQ(pager.resident_pages(), 3u);
  EXPECT_GE(pager.stats().evictions, 7u);
  for (uint64_t p = 0; p < 10; ++p) {
    EXPECT_EQ(pager.Read(f, p * kSlots), Value::Int(static_cast<int64_t>(p)));
  }
}

// ---------------------------------------------------------------------------
// FlushAll is a real checkpoint
// ---------------------------------------------------------------------------

TEST(EvictionTest, FlushAllCheckpointsExactlyTheDirtyPages) {
  Pager pager;  // unbounded: flushing alone must create the spill backend
  FileId f = pager.CreateFile();
  for (uint64_t p = 0; p < 3; ++p) {
    pager.Write(f, p * kSlots, ProbeValue(p));
  }
  (void)pager.Read(f, 0);  // reads don't dirty
  EXPECT_EQ(pager.FlushAll(), 3u);
  EXPECT_EQ(pager.stats().pages_flushed, 3u);
  EXPECT_GT(pager.stats().spill_bytes_written, 0u);
  EXPECT_EQ(pager.FlushAll(), 0u);  // everything clean now
  // One more write dirties exactly one page again.
  pager.Write(f, 5, Value::Int(9));
  EXPECT_EQ(pager.FlushAll(), 1u);
  EXPECT_EQ(pager.stats().pages_flushed, 4u);
}

TEST(EvictionTest, EvictingCheckpointedPagesWritesNothingAndReadsBack) {
  Pager pager;
  FileId f = pager.CreateFile();
  for (uint64_t p = 0; p < 6; ++p) {
    pager.Write(f, p * kSlots + 3, ProbeValue(p + 100));
  }
  ASSERT_EQ(pager.FlushAll(), 6u);
  uint64_t spilled_at_checkpoint = pager.stats().spill_bytes_written;
  // Clean, checkpointed pages evict without any further spill I/O.
  pager.set_max_resident_pages(1);
  EXPECT_EQ(pager.resident_pages(), 1u);
  EXPECT_EQ(pager.stats().spill_bytes_written, spilled_at_checkpoint);
  // Re-reading evicted pages after the flush yields the checkpointed data.
  for (uint64_t p = 0; p < 6; ++p) {
    EXPECT_EQ(pager.Read(f, p * kSlots + 3), ProbeValue(p + 100));
  }
}

// ---------------------------------------------------------------------------
// Truncate / drop release spill space; named spill files leave no artifacts
// ---------------------------------------------------------------------------

TEST(EvictionTest, TruncateAndDropReleaseSpillSlots) {
  Pager pager(Bounded(2));
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < 6 * kSlots; ++s) {
    pager.Write(f, s, Value::Int(static_cast<int64_t>(s)));
  }
  ASSERT_NE(pager.spill(), nullptr);
  EXPECT_GE(pager.spill()->live_slots(), 4u);
  pager.Truncate(f, kSlots / 2);
  EXPECT_EQ(pager.FilePages(f), 1u);
  EXPECT_LE(pager.spill()->live_slots(), 1u);
  EXPECT_EQ(pager.Read(f, 0), Value::Int(0));
  EXPECT_TRUE(pager.Read(f, kSlots / 2).is_null());
  // Dropping the file returns every remaining slot.
  pager.DropFile(f);
  EXPECT_EQ(pager.spill()->live_slots(), 0u);
}

TEST(EvictionTest, TruncateBoundaryOnEvictedPageClearsItsSpillCopy) {
  Pager pager(Bounded(2));
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < 4 * kSlots; ++s) {
    pager.Write(f, s, Value::Text("t" + std::to_string(s)));
  }
  ASSERT_FALSE(pager.IsResident(f, 0));  // boundary page is on disk
  pager.Truncate(f, kSlots / 4);
  // Evict the boundary page again; the cleared tail must stay cleared.
  for (uint64_t p = 1; p <= 3; ++p) {
    pager.Write(f, p * kSlots, Value::Int(1));
  }
  EXPECT_TRUE(pager.Read(f, kSlots / 4).is_null());
  EXPECT_EQ(pager.Read(f, 0), Value::Text("t0"));
}

TEST(EvictionTest, NamedSpillFileIsRemovedWithThePager) {
  std::string path = ::testing::TempDir() + "ds_eviction_spill_probe.bin";
  {
    PagerConfig config = Bounded(1);
    config.spill_path = path;
    Pager pager(config);
    FileId f = pager.CreateFile();
    pager.Write(f, 0, Value::Int(1));
    pager.Write(f, kSlots, Value::Int(2));  // forces a spill
    std::FILE* probe = std::fopen(path.c_str(), "rb");
    ASSERT_NE(probe, nullptr) << "spill file should exist while pager lives";
    std::fclose(probe);
    EXPECT_EQ(pager.Read(f, 0), Value::Int(1));
  }
  std::FILE* probe = std::fopen(path.c_str(), "rb");
  EXPECT_EQ(probe, nullptr) << "spill file must be cleaned up";
  if (probe != nullptr) std::fclose(probe);
}

// ---------------------------------------------------------------------------
// Randomized shadow-model stress: writes/reads/truncates across files under
// a tiny pool, every visible value checked against an in-memory shadow.
// ---------------------------------------------------------------------------

class EvictionShadowTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EvictionShadowTest, InterleavedOpsMatchShadowUnderTinyPool) {
  std::mt19937 rng(GetParam());
  Pager pager(Bounded(4));
  constexpr int kFiles = 3;
  constexpr uint64_t kMaxSlots = 12 * kSlots;  // 12 pages/file vs 4 frames
  std::vector<FileId> files;
  std::vector<std::vector<Value>> shadow(kFiles);
  for (int i = 0; i < kFiles; ++i) files.push_back(pager.CreateFile());

  for (int op = 0; op < 4000; ++op) {
    int i = static_cast<int>(rng() % kFiles);
    FileId f = files[i];
    std::vector<Value>& sh = shadow[i];
    switch (rng() % 8) {
      case 0:
      case 1:
      case 2: {  // write (grows the file like the pager does)
        uint64_t slot = rng() % kMaxSlots;
        Value v = ProbeValue(rng());
        pager.Write(f, slot, v);
        uint64_t capacity = ((slot / kSlots) + 1) * kSlots;
        if (sh.size() < capacity) sh.resize(capacity, Value::Null());
        sh[slot] = std::move(v);
        break;
      }
      case 3:
      case 4:
      case 5: {  // read an addressable slot and compare
        if (sh.empty()) break;
        uint64_t slot = rng() % sh.size();
        ASSERT_EQ(pager.Read(f, slot), sh[slot])
            << "file " << i << " slot " << slot << " op " << op;
        break;
      }
      case 6: {  // truncate to a random point, or move a value out
        if (sh.empty()) break;
        if (rng() % 8 == 0) {
          uint64_t keep = rng() % (pager.FileSize(f) + 1);
          pager.Truncate(f, keep);
          uint64_t keep_capacity = (keep + kSlots - 1) / kSlots * kSlots;
          sh.resize(keep_capacity);
          for (uint64_t s = keep; s < sh.size(); ++s) sh[s] = Value::Null();
        } else {
          uint64_t slot = rng() % sh.size();
          ASSERT_EQ(pager.Take(f, slot), sh[slot])
              << "file " << i << " slot " << slot << " op " << op;
          sh[slot] = Value::Null();
        }
        break;
      }
      default: {  // occasional checkpoint
        if (rng() % 16 == 0) (void)pager.FlushAll();
        break;
      }
    }
    ASSERT_LE(pager.resident_pages(), 4u) << "op " << op;
  }
  // Full final sweep: every addressable slot equals the shadow.
  for (int i = 0; i < kFiles; ++i) {
    for (uint64_t s = 0; s < shadow[i].size(); ++s) {
      ASSERT_EQ(pager.Read(files[i], s), shadow[i][s])
          << "file " << i << " slot " << s;
    }
  }
  EXPECT_GT(pager.stats().faults, 0u);
  EXPECT_GT(pager.stats().evictions, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvictionShadowTest,
                         ::testing::Values(11u, 1847u, 90210u));

// ---------------------------------------------------------------------------
// Acceptance: a million-row row-store scan under a 256-frame pool
// ---------------------------------------------------------------------------

TEST(EvictionTest, MillionRowRowStoreScanUnderA256FramePool) {
  constexpr size_t kRows = 1000000;
  constexpr size_t kCap = 256;
  auto store = CreateStorage(StorageModel::kRow, 2, nullptr, Bounded(kCap));
  storage::Pager& pager = store->pager();
  pager.set_accounting_enabled(false);
  Row r(2);
  for (size_t i = 0; i < kRows; ++i) {
    r[0] = Value::Int(static_cast<int64_t>(i));
    r[1] = Value::Int(static_cast<int64_t>(i) * 2);
    ASSERT_TRUE(store->AppendRow(r).ok());
    if (i % 65536 == 0) {
      ASSERT_LE(pager.resident_pages(), kCap) << "during load, row " << i;
    }
  }
  // ~7813 pages of data behind at most 256 frames.
  EXPECT_LE(pager.resident_pages(), kCap);
  EXPECT_GT(pager.stats().evictions, 0u);

  pager.set_accounting_enabled(true);
  pager.BeginEpoch();
  uint64_t faults_before = pager.stats().faults;
  int64_t sum = 0;
  for (size_t i = 0; i < kRows; ++i) {
    Row row = store->GetRow(i).ValueOrDie();
    ASSERT_EQ(row[0], Value::Int(static_cast<int64_t>(i)));
    sum += row[1].int_value();
    if (i % 65536 == 0) {
      ASSERT_LE(pager.resident_pages(), kCap) << "during scan, row " << i;
    }
  }
  EXPECT_EQ(sum, static_cast<int64_t>(kRows) * (static_cast<int64_t>(kRows) - 1));
  EXPECT_LE(pager.resident_pages(), kCap);
  // The scan touched every page, but only 256 frames ever lived in memory:
  // the cold ones were genuinely loaded from the spill file — by demand
  // fault or, for a sequential scan like this one, readahead (which absorbs
  // roughly every other demand fault).
  constexpr size_t kDataPages = (kRows * 2 + kSlots - 1) / kSlots;
  EXPECT_EQ(pager.EpochPagesRead(), kDataPages);
  EXPECT_GE(pager.stats().faults + pager.stats().readaheads - faults_before,
            kDataPages - kCap);
  EXPECT_GT(pager.stats().readaheads, 0u);
  EXPECT_GT(pager.stats().spill_bytes_read, 0u);
}

}  // namespace
}  // namespace dataspread
