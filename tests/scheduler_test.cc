#include <gtest/gtest.h>

#include <atomic>

#include "core/scheduler.h"

namespace dataspread {
namespace {

TEST(SchedulerTest, RunsInPriorityOrder) {
  Scheduler s;
  std::vector<int> order;
  s.Enqueue(Priority::kBackground, [&] { order.push_back(3); });
  s.Enqueue(Priority::kVisible, [&] { order.push_back(1); });
  s.Enqueue(Priority::kNear, [&] { order.push_back(2); });
  s.Enqueue(Priority::kVisible, [&] { order.push_back(1); });
  EXPECT_EQ(s.RunUntilIdle(), 4u);
  EXPECT_EQ(order, (std::vector<int>{1, 1, 2, 3}));
}

TEST(SchedulerTest, FifoWithinBand) {
  Scheduler s;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    s.Enqueue(Priority::kVisible, [&order, i] { order.push_back(i); });
  }
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(SchedulerTest, EnqueueUniqueCoalesces) {
  Scheduler s;
  int runs = 0;
  EXPECT_TRUE(s.EnqueueUnique(Priority::kVisible, "refresh", [&] { ++runs; }));
  EXPECT_FALSE(s.EnqueueUnique(Priority::kVisible, "refresh", [&] { ++runs; }));
  EXPECT_TRUE(s.EnqueueUnique(Priority::kVisible, "other", [&] { ++runs; }));
  s.RunUntilIdle();
  EXPECT_EQ(runs, 2);
  // After draining, the key is available again.
  EXPECT_TRUE(s.EnqueueUnique(Priority::kVisible, "refresh", [&] { ++runs; }));
  s.RunUntilIdle();
  EXPECT_EQ(runs, 3);
}

TEST(SchedulerTest, TasksCanEnqueueTasks) {
  Scheduler s;
  std::vector<int> order;
  s.Enqueue(Priority::kBackground, [&] {
    order.push_back(1);
    s.Enqueue(Priority::kVisible, [&] { order.push_back(2); });
  });
  s.RunUntilIdle();
  EXPECT_EQ(order, (std::vector<int>{1, 2}));
}

TEST(SchedulerTest, RunOneAndPending) {
  Scheduler s;
  int runs = 0;
  EXPECT_FALSE(s.RunOne());
  s.Enqueue(Priority::kVisible, [&] { ++runs; });
  s.Enqueue(Priority::kVisible, [&] { ++runs; });
  EXPECT_EQ(s.pending(), 2u);
  EXPECT_TRUE(s.RunOne());
  EXPECT_EQ(s.pending(), 1u);
  EXPECT_EQ(runs, 1);
}

TEST(SchedulerTest, ExecutedCounters) {
  Scheduler s;
  s.Enqueue(Priority::kVisible, [] {});
  s.Enqueue(Priority::kBackground, [] {});
  s.RunUntilIdle();
  EXPECT_EQ(s.executed(Priority::kVisible), 1u);
  EXPECT_EQ(s.executed(Priority::kBackground), 1u);
  EXPECT_EQ(s.total_executed(), 2u);
}

TEST(SchedulerTest, BackgroundWorkerDrains) {
  Scheduler s;
  s.StartWorker();
  std::atomic<int> runs{0};
  for (int i = 0; i < 100; ++i) {
    s.Enqueue(Priority::kNear, [&] { runs.fetch_add(1); });
  }
  s.WaitIdle();
  EXPECT_EQ(runs.load(), 100);
  s.StopWorker();
  EXPECT_FALSE(s.worker_running());
}

TEST(SchedulerTest, WorkerVisibleFirstUnderLoad) {
  Scheduler s;
  // Enqueue before starting the worker so ordering is observable.
  std::vector<int> order;
  std::mutex m;
  for (int i = 0; i < 10; ++i) {
    s.Enqueue(Priority::kBackground, [&] {
      std::lock_guard<std::mutex> lock(m);
      order.push_back(2);
    });
  }
  s.Enqueue(Priority::kVisible, [&] {
    std::lock_guard<std::mutex> lock(m);
    order.push_back(1);
  });
  s.StartWorker();
  s.WaitIdle();
  s.StopWorker();
  ASSERT_EQ(order.size(), 11u);
  EXPECT_EQ(order[0], 1);  // visible ran first
}

}  // namespace
}  // namespace dataspread
