#include <gtest/gtest.h>

#include "core/dataspread.h"

namespace dataspread {
namespace {

/// Figure 2a scenarios: DBSQL with positional addressing (RANGEVALUE /
/// RANGETABLE) and result spills.
class DbsqlTest : public ::testing::Test {
 protected:
  DbsqlTest() {
    sheet_ = ds_.AddSheet("S").ValueOrDie();
    EXPECT_TRUE(ds_.Sql("CREATE TABLE actors (actorid INT PRIMARY KEY, "
                        "name TEXT)").ok());
    EXPECT_TRUE(ds_.Sql("INSERT INTO actors VALUES (1, 'Weaver'), "
                        "(2, 'Oldman'), (3, 'Thurman')").ok());
  }

  DataSpread ds_;
  Sheet* sheet_;
};

TEST_F(DbsqlTest, PlainQuerySpillsBlock) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0,
                            "=DBSQL(\"SELECT actorid, name FROM actors "
                            "ORDER BY actorid\")").ok());
  // Anchor gets the first value; the block spans 3 rows × 2 columns.
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Int(1));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 1), Value::Text("Weaver"));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 2, 1), Value::Text("Thurman"));
}

TEST_F(DbsqlTest, RangeValueRelativeReference) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0, "2").ok());  // A1
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 1,
                            "=DBSQL(\"SELECT name FROM actors WHERE "
                            "actorid = RANGEVALUE(A1)\")").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 1), Value::Text("Oldman"));
  // Editing the referenced cell re-runs the query (dependency tracked).
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0, "3").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 1), Value::Text("Thurman"));
}

TEST_F(DbsqlTest, BackEndChangeRerunsDbsql) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0,
                            "=DBSQL(\"SELECT COUNT(*) FROM actors\")").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Int(3));
  ASSERT_TRUE(ds_.Sql("INSERT INTO actors VALUES (4, 'Rickman')").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Int(4));
}

TEST_F(DbsqlTest, RangeTableJoinsSheetDataWithDatabase) {
  // Sheet range with header: actorid | bonus.
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 3, "actorid").ok());  // D1
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 4, "bonus").ok());    // E1
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 1, 3, "1").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 1, 4, "100").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 2, 3, "3").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 2, 4, "250").ok());
  ASSERT_TRUE(ds_.SetCellAt(
                    sheet_, 0, 6,
                    "=DBSQL(\"SELECT name, bonus FROM actors NATURAL JOIN "
                    "RANGETABLE(D1:E3) ORDER BY bonus DESC\")")
                  .ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 6), Value::Text("Thurman"));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 7), Value::Int(250));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 6), Value::Text("Weaver"));
  // Editing sheet data inside the RANGETABLE re-runs the query.
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 1, 4, "999").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 6), Value::Text("Weaver"));
}

TEST_F(DbsqlTest, SpillShrinksCleanly) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0,
                            "=DBSQL(\"SELECT name FROM actors ORDER BY "
                            "actorid\")").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 2, 0), Value::Text("Thurman"));
  ASSERT_TRUE(ds_.Sql("DELETE FROM actors WHERE actorid > 1").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Text("Weaver"));
  // Stale spill rows are cleared.
  EXPECT_TRUE(ds_.GetValueAt(sheet_, 1, 0).is_null());
  EXPECT_TRUE(ds_.GetValueAt(sheet_, 2, 0).is_null());
}

TEST_F(DbsqlTest, SharedComputationAcrossIdenticalCells) {
  uint64_t before = ds_.interface_manager().dbsql_executions();
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0,
                            "=DBSQL(\"SELECT COUNT(*) FROM actors\")").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 5, 0,
                            "=DBSQL(\"SELECT COUNT(*) FROM actors\")").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 5, 0), Value::Int(3));
  // The second identical query is served from the shared-result cache.
  EXPECT_EQ(ds_.interface_manager().dbsql_executions() - before, 1u);
  EXPECT_GE(ds_.interface_manager().dbsql_cache_hits(), 1u);
}

TEST_F(DbsqlTest, DbsqlRejectsNonSelect) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0,
                            "=DBSQL(\"DELETE FROM actors\")").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Error("#VALUE!"));
  EXPECT_EQ(ds_.Sql("SELECT COUNT(*) FROM actors").value().rows[0][0],
            Value::Int(3));
}

TEST_F(DbsqlTest, BadSqlShowsValueError) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0, "=DBSQL(\"SELEKT nope\")").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Error("#VALUE!"));
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 1, 0, "=DBSQL(42)").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 0), Value::Error("#VALUE!"));
}

TEST_F(DbsqlTest, EmptyResultShowsPlaceholder) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0,
                            "=DBSQL(\"SELECT name FROM actors WHERE "
                            "actorid = 99\")").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Text("(0 rows)"));
}

TEST_F(DbsqlTest, FormulasOverSpill) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0,
                            "=DBSQL(\"SELECT actorid FROM actors ORDER BY "
                            "actorid\")").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 2, "=SUM(A1:A3)").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 2), Value::Real(6.0));
  // Figure 2c chain: DB change → DBSQL spill refresh → dependent formula.
  // Inserting actorid 0 shifts the ordered spill to [0,1,2,3]: SUM(A1:A3)=3.
  ASSERT_TRUE(ds_.Sql("INSERT INTO actors VALUES (0, 'Zeta')").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 2), Value::Real(3.0));
}

TEST_F(DbsqlTest, SqlThroughFacadeSupportsQualifiedRefs) {
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 0, "2").ok());
  auto rs = ds_.Sql("SELECT name FROM actors WHERE actorid = RANGEVALUE(S!A1)");
  ASSERT_TRUE(rs.ok()) << rs.status().ToString();
  ASSERT_EQ(rs.value().num_rows(), 1u);
  EXPECT_EQ(rs.value().rows[0][0], Value::Text("Oldman"));
  // Unqualified refs have no anchor through the facade.
  EXPECT_FALSE(ds_.Sql("SELECT RANGEVALUE(A1)").ok());
}

}  // namespace
}  // namespace dataspread
