#include <gtest/gtest.h>

#include "sheet/address.h"

namespace dataspread {
namespace {

TEST(AddressTest, ColumnNames) {
  EXPECT_EQ(ColumnName(0), "A");
  EXPECT_EQ(ColumnName(25), "Z");
  EXPECT_EQ(ColumnName(26), "AA");
  EXPECT_EQ(ColumnName(27), "AB");
  EXPECT_EQ(ColumnName(51), "AZ");
  EXPECT_EQ(ColumnName(52), "BA");
  EXPECT_EQ(ColumnName(701), "ZZ");
  EXPECT_EQ(ColumnName(702), "AAA");
}

TEST(AddressTest, ColumnIndex) {
  EXPECT_EQ(ColumnIndex("A").value(), 0);
  EXPECT_EQ(ColumnIndex("z").value(), 25);
  EXPECT_EQ(ColumnIndex("AA").value(), 26);
  EXPECT_EQ(ColumnIndex("AAA").value(), 702);
  EXPECT_FALSE(ColumnIndex("").ok());
  EXPECT_FALSE(ColumnIndex("A1").ok());
}

TEST(AddressTest, ColumnRoundTrip) {
  for (int64_t c = 0; c < 20000; c += 7) {
    EXPECT_EQ(ColumnIndex(ColumnName(c)).value(), c) << c;
  }
}

TEST(AddressTest, ParseSimpleCell) {
  CellRef ref = ParseCellRef("B3").value();
  EXPECT_EQ(ref.row, 2);
  EXPECT_EQ(ref.col, 1);
  EXPECT_FALSE(ref.abs_row);
  EXPECT_FALSE(ref.abs_col);
  EXPECT_TRUE(ref.sheet.empty());
}

TEST(AddressTest, ParseAbsoluteAnchors) {
  CellRef ref = ParseCellRef("$A$1").value();
  EXPECT_TRUE(ref.abs_row);
  EXPECT_TRUE(ref.abs_col);
  EXPECT_EQ(ref.row, 0);
  EXPECT_EQ(ref.col, 0);
  CellRef mixed = ParseCellRef("A$2").value();
  EXPECT_TRUE(mixed.abs_row);
  EXPECT_FALSE(mixed.abs_col);
}

TEST(AddressTest, ParseSheetQualified) {
  CellRef ref = ParseCellRef("Sheet2!C4").value();
  EXPECT_EQ(ref.sheet, "Sheet2");
  EXPECT_EQ(ref.row, 3);
  EXPECT_EQ(ref.col, 2);
}

TEST(AddressTest, ParseRejectsGarbage) {
  EXPECT_FALSE(ParseCellRef("").ok());
  EXPECT_FALSE(ParseCellRef("123").ok());
  EXPECT_FALSE(ParseCellRef("A0").ok());
  EXPECT_FALSE(ParseCellRef("A-1").ok());
  EXPECT_FALSE(ParseCellRef("!A1").ok());
  EXPECT_FALSE(ParseCellRef("A1B").ok());
}

TEST(AddressTest, ParseRange) {
  RangeRef r = ParseRangeRef("A1:D100").value();
  EXPECT_EQ(r.start.row, 0);
  EXPECT_EQ(r.start.col, 0);
  EXPECT_EQ(r.end.row, 99);
  EXPECT_EQ(r.end.col, 3);
  EXPECT_EQ(r.num_rows(), 100);
  EXPECT_EQ(r.num_cols(), 4);
  EXPECT_TRUE(r.Contains(50, 2));
  EXPECT_FALSE(r.Contains(100, 2));
}

TEST(AddressTest, ParseRangeNormalizesCorners) {
  RangeRef r = ParseRangeRef("D100:A1").value();
  EXPECT_EQ(r.start.row, 0);
  EXPECT_EQ(r.end.row, 99);
  EXPECT_EQ(r.start.col, 0);
  EXPECT_EQ(r.end.col, 3);
}

TEST(AddressTest, SingleCellRange) {
  RangeRef r = ParseRangeRef("B2").value();
  EXPECT_EQ(r.num_rows(), 1);
  EXPECT_EQ(r.num_cols(), 1);
}

TEST(AddressTest, SheetQualifiedRange) {
  RangeRef r = ParseRangeRef("Data!A1:B2").value();
  EXPECT_EQ(r.sheet, "Data");
}

TEST(AddressTest, Formatting) {
  EXPECT_EQ(FormatCell(0, 0), "A1");
  EXPECT_EQ(FormatCell(99, 3), "D100");
  CellRef ref;
  ref.row = 1;
  ref.col = 1;
  ref.abs_col = true;
  EXPECT_EQ(FormatCellRef(ref), "$B2");
  ref.sheet = "S2";
  ref.abs_row = true;
  EXPECT_EQ(FormatCellRef(ref), "S2!$B$2");
}

TEST(AddressTest, ParseFormatRoundTrip) {
  for (const char* text : {"A1", "$B$2", "Sheet2!C4", "ZZ100", "$AA$77"}) {
    CellRef ref = ParseCellRef(text).value();
    EXPECT_EQ(FormatCellRef(ref), text);
  }
}

}  // namespace
}  // namespace dataspread
