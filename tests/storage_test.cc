#include <gtest/gtest.h>

#include <random>

#include "storage/hybrid_store.h"
#include "storage/rcv_store.h"
#include "storage/table_storage.h"

namespace dataspread {
namespace {

Row MakeRow(int64_t a, const std::string& b, double c) {
  return Row{Value::Int(a), Value::Text(b), Value::Real(c)};
}

/// Parameterized over all four storage models: behavioural equivalence.
class StorageModelTest : public ::testing::TestWithParam<StorageModel> {
 protected:
  std::unique_ptr<TableStorage> Make(size_t cols) {
    return CreateStorage(GetParam(), cols);
  }
};

TEST_P(StorageModelTest, StartsEmpty) {
  auto s = Make(3);
  EXPECT_EQ(s->num_rows(), 0u);
  EXPECT_EQ(s->num_columns(), 3u);
  EXPECT_FALSE(s->Get(0, 0).ok());
}

TEST_P(StorageModelTest, AppendAndGet) {
  auto s = Make(3);
  ASSERT_TRUE(s->AppendRow(MakeRow(1, "a", 0.5)).ok());
  ASSERT_TRUE(s->AppendRow(MakeRow(2, "b", 1.5)).ok());
  EXPECT_EQ(s->num_rows(), 2u);
  EXPECT_EQ(s->Get(0, 0).value(), Value::Int(1));
  EXPECT_EQ(s->Get(1, 1).value(), Value::Text("b"));
  EXPECT_EQ(s->Get(1, 2).value(), Value::Real(1.5));
  Row row = s->GetRow(0).value();
  ASSERT_EQ(row.size(), 3u);
  EXPECT_EQ(row[1], Value::Text("a"));
}

TEST_P(StorageModelTest, ArityMismatchRejected) {
  auto s = Make(3);
  EXPECT_FALSE(s->AppendRow(Row{Value::Int(1)}).ok());
}

TEST_P(StorageModelTest, ErrorValuesRejected) {
  auto s = Make(1);
  EXPECT_FALSE(s->AppendRow(Row{Value::Error("#REF!")}).ok());
  ASSERT_TRUE(s->AppendRow(Row{Value::Int(1)}).ok());
  EXPECT_FALSE(s->Set(0, 0, Value::Error("#DIV/0!")).ok());
}

TEST_P(StorageModelTest, SetUpdatesCell) {
  auto s = Make(2);
  ASSERT_TRUE(s->AppendRow(Row{Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(s->Set(0, 1, Value::Text("new")).ok());
  EXPECT_EQ(s->Get(0, 1).value(), Value::Text("new"));
  EXPECT_FALSE(s->Set(5, 0, Value::Int(0)).ok());
}

TEST_P(StorageModelTest, NullsRoundTrip) {
  auto s = Make(2);
  ASSERT_TRUE(s->AppendRow(Row{Value::Null(), Value::Int(1)}).ok());
  EXPECT_TRUE(s->Get(0, 0).value().is_null());
  ASSERT_TRUE(s->Set(0, 1, Value::Null()).ok());
  EXPECT_TRUE(s->Get(0, 1).value().is_null());
}

TEST_P(StorageModelTest, DeleteSwapsWithLast) {
  auto s = Make(1);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(s->AppendRow(Row{Value::Int(i)}).ok());
  }
  // Delete slot 1; slot 4 (value 4) moves into it.
  auto moved = s->DeleteRow(1);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 4u);
  EXPECT_EQ(s->num_rows(), 4u);
  EXPECT_EQ(s->Get(1, 0).value(), Value::Int(4));
  // Deleting the last slot moves nothing.
  moved = s->DeleteRow(3);
  ASSERT_TRUE(moved.ok());
  EXPECT_EQ(moved.value(), 3u);
}

TEST_P(StorageModelTest, AddColumnWithDefault) {
  auto s = Make(2);
  ASSERT_TRUE(s->AppendRow(Row{Value::Int(1), Value::Int(2)}).ok());
  ASSERT_TRUE(s->AddColumn(Value::Text("d")).ok());
  EXPECT_EQ(s->num_columns(), 3u);
  EXPECT_EQ(s->Get(0, 2).value(), Value::Text("d"));
  ASSERT_TRUE(s->AppendRow(Row{Value::Int(3), Value::Int(4), Value::Int(5)}).ok());
  EXPECT_EQ(s->Get(1, 2).value(), Value::Int(5));
}

TEST_P(StorageModelTest, DropColumnShiftsLeft) {
  auto s = Make(3);
  ASSERT_TRUE(s->AppendRow(MakeRow(1, "a", 0.5)).ok());
  ASSERT_TRUE(s->DropColumn(1).ok());
  EXPECT_EQ(s->num_columns(), 2u);
  EXPECT_EQ(s->Get(0, 0).value(), Value::Int(1));
  EXPECT_EQ(s->Get(0, 1).value(), Value::Real(0.5));
  EXPECT_FALSE(s->DropColumn(7).ok());
}

TEST_P(StorageModelTest, SchemaChangeAfterDataMatrix) {
  // add column -> update -> drop another column -> contents consistent.
  auto s = Make(2);
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        s->AppendRow(Row{Value::Int(i), Value::Text("r" + std::to_string(i))})
            .ok());
  }
  ASSERT_TRUE(s->AddColumn(Value::Int(0)).ok());
  ASSERT_TRUE(s->Set(3, 2, Value::Int(99)).ok());
  ASSERT_TRUE(s->DropColumn(0).ok());
  EXPECT_EQ(s->num_columns(), 2u);
  EXPECT_EQ(s->Get(3, 0).value(), Value::Text("r3"));
  EXPECT_EQ(s->Get(3, 1).value(), Value::Int(99));
  EXPECT_EQ(s->Get(4, 1).value(), Value::Int(0));
}

TEST_P(StorageModelTest, RandomizedParityWithReferenceModel) {
  // Property test: the store behaves like a simple vector-of-rows model
  // under a random workload of appends, updates, and deletes.
  auto s = Make(2);
  std::vector<Row> reference;
  std::mt19937 rng(42);
  for (int step = 0; step < 500; ++step) {
    int action = static_cast<int>(rng() % 3);
    if (action == 0 || reference.empty()) {
      Row r{Value::Int(static_cast<int64_t>(rng() % 100)),
            Value::Text("s" + std::to_string(rng() % 10))};
      ASSERT_TRUE(s->AppendRow(r).ok());
      reference.push_back(r);
    } else if (action == 1) {
      size_t row = rng() % reference.size();
      Value v = Value::Int(static_cast<int64_t>(rng() % 1000));
      ASSERT_TRUE(s->Set(row, 0, v).ok());
      reference[row][0] = v;
    } else {
      size_t row = rng() % reference.size();
      ASSERT_TRUE(s->DeleteRow(row).ok());
      reference[row] = reference.back();
      reference.pop_back();
    }
  }
  ASSERT_EQ(s->num_rows(), reference.size());
  for (size_t r = 0; r < reference.size(); ++r) {
    EXPECT_EQ(s->GetRow(r).value(), reference[r]) << "row " << r;
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, StorageModelTest,
                         ::testing::Values(StorageModel::kRow,
                                           StorageModel::kColumn,
                                           StorageModel::kRcv,
                                           StorageModel::kHybrid),
                         [](const auto& info) {
                           return StorageModelName(info.param);
                         });

// ---------------------------------------------------------------------------
// The paper's block-level claims (Relational Storage Manager, §3)
// ---------------------------------------------------------------------------

size_t PagesDirtiedByAddColumn(StorageModel model, size_t rows) {
  auto s = CreateStorage(model, 4);
  s->accountant().set_enabled(false);
  for (size_t i = 0; i < rows; ++i) {
    Row r{Value::Int(static_cast<int64_t>(i)), Value::Int(1), Value::Int(2),
          Value::Int(3)};
    EXPECT_TRUE(s->AppendRow(r).ok());
  }
  s->accountant().set_enabled(true);
  s->accountant().BeginEpoch();
  EXPECT_TRUE(s->AddColumn(Value::Int(0)).ok());
  return s->accountant().EpochPagesWritten();
}

TEST(PageAccountingTest, HybridAddColumnTouchesFarFewerBlocksThanRowStore) {
  constexpr size_t kRows = 20000;
  size_t row_pages = PagesDirtiedByAddColumn(StorageModel::kRow, kRows);
  size_t hybrid_pages = PagesDirtiedByAddColumn(StorageModel::kHybrid, kRows);
  // Row store rewrites every tuple (5 slots/row now); hybrid writes only the
  // fresh single-attribute group (1 slot/row).
  EXPECT_GE(row_pages, hybrid_pages * 4);
}

TEST(PageAccountingTest, HybridDropOfAddedColumnIsMetadataOnly) {
  auto s = CreateStorage(StorageModel::kHybrid, 2);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(s->AppendRow(Row{Value::Int(1), Value::Int(2)}).ok());
  }
  ASSERT_TRUE(s->AddColumn(Value::Int(0)).ok());
  s->accountant().BeginEpoch();
  ASSERT_TRUE(s->DropColumn(2).ok());  // its own group: zero page writes
  EXPECT_EQ(s->accountant().EpochPagesWritten(), 0u);
}

TEST(PageAccountingTest, RcvNullDefaultAddColumnIsFree) {
  auto s = CreateStorage(StorageModel::kRcv, 2);
  for (size_t i = 0; i < 1000; ++i) {
    ASSERT_TRUE(s->AppendRow(Row{Value::Int(1), Value::Int(2)}).ok());
  }
  s->accountant().BeginEpoch();
  ASSERT_TRUE(s->AddColumn(Value::Null()).ok());
  EXPECT_EQ(s->accountant().EpochPagesWritten(), 0u);
}

TEST(HybridStoreTest, GroupLifecycle) {
  HybridStore s(3, nullptr);
  EXPECT_EQ(s.num_groups(), 1u);
  ASSERT_TRUE(s.AddColumn(Value::Int(0)).ok());
  ASSERT_TRUE(s.AddColumn(Value::Int(0)).ok());
  EXPECT_EQ(s.num_groups(), 3u);
  ASSERT_TRUE(s.DropColumn(3).ok());  // drops a whole single-column group
  EXPECT_EQ(s.num_groups(), 2u);
  ASSERT_TRUE(s.DropColumn(1).ok());  // compacts inside the wide group
  EXPECT_EQ(s.num_groups(), 2u);
  EXPECT_EQ(s.num_columns(), 3u);
}

TEST(HybridStoreTest, ReorganizeMergesGroupsAndPreservesData) {
  HybridStore s(2, nullptr);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(
        s.AppendRow(Row{Value::Int(i), Value::Text("x" + std::to_string(i))})
            .ok());
  }
  ASSERT_TRUE(s.AddColumn(Value::Real(0.5)).ok());
  ASSERT_TRUE(s.AddColumn(Value::Int(7)).ok());
  EXPECT_EQ(s.num_groups(), 3u);
  ASSERT_TRUE(s.Reorganize().ok());
  EXPECT_EQ(s.num_groups(), 1u);
  EXPECT_EQ(s.Get(42, 0).value(), Value::Int(42));
  EXPECT_EQ(s.Get(42, 1).value(), Value::Text("x42"));
  EXPECT_EQ(s.Get(42, 2).value(), Value::Real(0.5));
  EXPECT_EQ(s.Get(42, 3).value(), Value::Int(7));
}

TEST(RcvStoreTest, SparsityOnlyMaterializesNonNulls) {
  auto s = CreateStorage(StorageModel::kRcv, 10);
  auto* rcv = dynamic_cast<RcvStore*>(s.get());
  ASSERT_NE(rcv, nullptr);
  Row sparse(10, Value::Null());
  sparse[3] = Value::Int(1);
  for (int i = 0; i < 100; ++i) {
    ASSERT_TRUE(s->AppendRow(sparse).ok());
  }
  EXPECT_EQ(rcv->num_triples(), 100u);  // 1 of 10 attributes materialized
}

}  // namespace
}  // namespace dataspread
