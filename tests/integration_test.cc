#include <gtest/gtest.h>

#include "core/dataspread.h"

namespace dataspread {
namespace {

/// End-to-end scenarios from the paper's introduction and demonstration.
class IntegrationTest : public ::testing::Test {
 protected:
  void Put(Sheet* s, int64_t r, int64_t c, const std::string& v) {
    ASSERT_TRUE(ds_.SetCellAt(s, r, c, v).ok());
  }
  DataSpread ds_;
};

TEST_F(IntegrationTest, GradebookScenarioFromIntroduction) {
  // "course assignment scores ... rows 1-100, columns 1-5 in one sheet, and
  //  demographic information ... in another sheet."
  Sheet* scores = ds_.AddSheet("Scores").ValueOrDie();
  Sheet* demo = ds_.AddSheet("Demo").ValueOrDie();

  Put(scores, 0, 0, "student");
  Put(scores, 0, 1, "hw1");
  Put(scores, 0, 2, "hw2");
  Put(scores, 0, 3, "grade");
  const char* students[] = {"ann", "bob", "cat", "dan"};
  int hw1[] = {95, 60, 91, 70};
  int hw2[] = {80, 92, 85, 75};
  double grade[] = {3.9, 3.1, 3.7, 2.9};
  for (int i = 0; i < 4; ++i) {
    Put(scores, i + 1, 0, students[i]);
    Put(scores, i + 1, 1, std::to_string(hw1[i]));
    Put(scores, i + 1, 2, std::to_string(hw2[i]));
    Put(scores, i + 1, 3, std::to_string(grade[i]));
  }
  Put(demo, 0, 0, "student");
  Put(demo, 0, 1, "program");
  const char* programs[] = {"undergrad", "MS", "undergrad", "PhD"};
  for (int i = 0; i < 4; ++i) {
    Put(demo, i + 1, 0, students[i]);
    Put(demo, i + 1, 1, programs[i]);
  }

  // Scenario 1: "select the students having points higher than 90 in at
  // least one assignment" — impossible by hand in a plain spreadsheet,
  // a one-liner in DataSpread.
  Put(scores, 0, 6,
      "=DBSQL(\"SELECT student FROM RANGETABLE(A1:D5) "
      "WHERE hw1 > 90 OR hw2 > 90 ORDER BY student\")");
  EXPECT_EQ(ds_.GetValueAt(scores, 0, 6), Value::Text("ann"));
  EXPECT_EQ(ds_.GetValueAt(scores, 1, 6), Value::Text("bob"));
  EXPECT_EQ(ds_.GetValueAt(scores, 2, 6), Value::Text("cat"));

  // Scenario 2: "plot the average grade by demographic group" — the join of
  // the two sheets.
  Put(scores, 0, 8,
      "=DBSQL(\"SELECT program, AVG(grade) g FROM RANGETABLE(A1:D5) "
      "NATURAL JOIN RANGETABLE(Demo!A1:B5) GROUP BY program "
      "ORDER BY g DESC\")");
  EXPECT_EQ(ds_.GetValueAt(scores, 0, 8), Value::Text("undergrad"));
  EXPECT_EQ(ds_.GetValueAt(scores, 0, 9), Value::Real(3.8));
  EXPECT_EQ(ds_.GetValueAt(scores, 1, 8), Value::Text("MS"));
  EXPECT_EQ(ds_.GetValueAt(scores, 2, 8), Value::Text("PhD"));

  // A grade correction updates both analyses.
  Put(scores, 4, 1, "93");  // dan's hw1
  EXPECT_EQ(ds_.GetValueAt(scores, 3, 6), Value::Text("dan"));
}

TEST_F(IntegrationTest, MovieScenarioFigure2a) {
  Sheet* s = ds_.AddSheet("S").ValueOrDie();
  ASSERT_TRUE(ds_.Sql("CREATE TABLE movies (movieid INT PRIMARY KEY, "
                      "title TEXT, year INT)").ok());
  ASSERT_TRUE(ds_.Sql("CREATE TABLE movies2actors (movieid INT, "
                      "actorid INT)").ok());
  ASSERT_TRUE(ds_.Sql("CREATE TABLE actors (actorid INT PRIMARY KEY, "
                      "name TEXT)").ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO movies VALUES (1, 'Alien', 1979), "
                      "(2, 'Aliens', 1986), (3, 'Brazil', 1985)").ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO actors VALUES (1, 'Weaver'), "
                      "(2, 'DeNiro')").ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO movies2actors VALUES (1, 1), (2, 1), "
                      "(3, 2)").ok());

  // B1/B2 hold query parameters; B3 holds the three-relation join that
  // references them via RANGEVALUE — exactly Figure 2a.
  Put(s, 0, 1, "1975");  // B1: earliest year
  Put(s, 1, 1, "Weaver");  // B2: actor name
  Put(s, 2, 1,
      "=DBSQL(\"SELECT title FROM movies NATURAL JOIN movies2actors "
      "NATURAL JOIN actors WHERE year >= RANGEVALUE(B1) "
      "AND name = RANGEVALUE(B2) ORDER BY year\")");
  // Output spans B3:B4 ("not limited to a single cell").
  EXPECT_EQ(ds_.GetValueAt(s, 2, 1), Value::Text("Alien"));
  EXPECT_EQ(ds_.GetValueAt(s, 3, 1), Value::Text("Aliens"));

  // Changing a parameter re-evaluates the query.
  Put(s, 1, 1, "DeNiro");
  EXPECT_EQ(ds_.GetValueAt(s, 2, 1), Value::Text("Brazil"));
  EXPECT_TRUE(ds_.GetValueAt(s, 3, 1).is_null());  // spill shrank
}

TEST_F(IntegrationTest, ContinuouslyLoadedLogScenario) {
  // Intro scenario: "course management software outputs actions ... into a
  // relational database ... the data is continuously added."
  Sheet* s = ds_.AddSheet("S").ValueOrDie();
  ASSERT_TRUE(ds_.Sql("CREATE TABLE log (seq INT PRIMARY KEY, action TEXT)")
                  .ok());
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "log").ok());
  Put(s, 0, 3, "=DBSQL(\"SELECT COUNT(*) FROM log\")");
  EXPECT_EQ(ds_.GetValueAt(s, 0, 3), Value::Int(0));
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ds_.Sql("INSERT INTO log VALUES (" + std::to_string(i) +
                        ", 'submit')").ok());
  }
  // The bound region and the aggregate both track the live table.
  EXPECT_EQ(ds_.GetValueAt(s, 0, 3), Value::Int(10));
  EXPECT_EQ(ds_.GetValueAt(s, 10, 0), Value::Int(9));
}

TEST_F(IntegrationTest, ExportQueryReimportLoop) {
  // Figure 2b full loop: range → table → SQL filter → new region.
  Sheet* s = ds_.AddSheet("S").ValueOrDie();
  Put(s, 0, 0, "product");
  Put(s, 0, 1, "price");
  const char* products[] = {"nail", "hammer", "saw"};
  int prices[] = {1, 20, 35};
  for (int i = 0; i < 3; ++i) {
    Put(s, i + 1, 0, products[i]);
    Put(s, i + 1, 1, std::to_string(prices[i]));
  }
  ASSERT_TRUE(
      ds_.CreateTableFromRange("S", "A1:B4", "products", "product").ok());
  Put(s, 0, 4,
      "=DBSQL(\"SELECT product FROM products WHERE price > 10 "
      "ORDER BY price DESC\")");
  EXPECT_EQ(ds_.GetValueAt(s, 0, 4), Value::Text("saw"));
  EXPECT_EQ(ds_.GetValueAt(s, 1, 4), Value::Text("hammer"));
  // Back-end mutation flows into the spill.
  ASSERT_TRUE(ds_.Sql("UPDATE products SET price = 5 WHERE product = "
                      "'hammer'").ok());
  EXPECT_EQ(ds_.GetValueAt(s, 0, 4), Value::Text("saw"));
  EXPECT_TRUE(ds_.GetValueAt(s, 1, 4).is_null());
}

TEST_F(IntegrationTest, FormulasAndSqlInterleave) {
  Sheet* s = ds_.AddSheet("S").ValueOrDie();
  ASSERT_TRUE(ds_.Sql("CREATE TABLE t (a INT PRIMARY KEY)").ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO t VALUES (10), (20), (30)").ok());
  Put(s, 0, 0, "=DBSQL(\"SELECT SUM(a) FROM t\")");          // 60
  Put(s, 0, 1, "=A1/2");                                      // 30
  Put(s, 0, 2, "=IF(B1>25, \"big\", \"small\")");
  EXPECT_EQ(ds_.GetValueAt(s, 0, 1), Value::Real(30.0));
  EXPECT_EQ(ds_.GetValueAt(s, 0, 2), Value::Text("big"));
  ASSERT_TRUE(ds_.Sql("DELETE FROM t WHERE a > 10").ok());
  EXPECT_EQ(ds_.GetValueAt(s, 0, 1), Value::Real(5.0));
  EXPECT_EQ(ds_.GetValueAt(s, 0, 2), Value::Text("small"));
}

TEST_F(IntegrationTest, BackgroundComputeMode) {
  DataSpreadOptions opts;
  opts.background_compute = true;
  DataSpread ds(opts);
  Sheet* s = ds.AddSheet("S").ValueOrDie();
  ASSERT_TRUE(ds.Sql("CREATE TABLE t (a INT)").ok());
  ASSERT_TRUE(ds.Sql("INSERT INTO t VALUES (1), (2), (3)").ok());
  ASSERT_TRUE(ds.SetCellAt(s, 0, 0, "=DBSQL(\"SELECT SUM(a) FROM t\")").ok());
  ASSERT_TRUE(ds.SetCellAt(s, 0, 1, "=A1*10").ok());
  ds.Pump();  // waits for the worker to drain
  EXPECT_EQ(ds.GetValueAt(s, 0, 0), Value::Int(6));
  EXPECT_EQ(ds.GetValueAt(s, 0, 1), Value::Int(60));
}

TEST_F(IntegrationTest, ShowRendersRange) {
  Sheet* s = ds_.AddSheet("S").ValueOrDie();
  Put(s, 0, 0, "1");
  Put(s, 0, 1, "x");
  Put(s, 1, 0, "2");
  auto text = ds_.Show("S", "A1:B2");
  ASSERT_TRUE(text.ok());
  EXPECT_EQ(text.value(), "1\tx\n2\t\n");
}

}  // namespace
}  // namespace dataspread
