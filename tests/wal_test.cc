// Durability: the write-ahead log and crash recovery (DESIGN.md §6).
//
// Layers under test, bottom up:
//   - value_codec CRC32 and the WAL record framing (append / reopen / torn
//     tail / CRC rejection at the Wal level),
//   - pager-level durability: clean shutdown, crash (simulated SIGKILL)
//     without checkpoint, recovery under a bounded pool while evictions
//     write back mid-workload,
//   - the torn-tail fuzz: truncating the log at *every byte offset* must
//     recover a clean per-record prefix of the workload,
//   - the full-page-image torn-write defense: recovery succeeds with the
//     entire spill file overwritten by garbage,
//   - a randomized shadow-model recovery property (the eviction_test shadow
//     style): crash at an arbitrary point, recover, continue, crash again,
//   - byte-identical recovery for all four storage models, driven through
//     the real TableStorage mutation paths,
//   - checkpoint semantics: FlushAll truncates the log, auto-checkpoint
//     bounds it, and spill dead_bytes is observable in PagerStats.
#include <gtest/gtest.h>

#include <algorithm>
#include <cstdio>
#include <cstring>
#include <map>
#include <random>
#include <string>
#include <unordered_map>
#include <vector>

#include <sys/stat.h>
#include <unistd.h>

#include "storage/page_cursor.h"
#include "storage/pager.h"
#include "storage/spill_file.h"
#include "storage/table_storage.h"
#include "storage/value_codec.h"
#include "storage/wal.h"

namespace dataspread {
namespace {

using storage::Crc32;
using storage::FileId;
using storage::Pager;
using storage::PagerConfig;
using storage::TxnId;
using storage::ValuePage;
using storage::Wal;
using storage::WalRecordType;

constexpr uint64_t kSlots = Pager::kSlotsPerPage;

/// The wal/spill pair of one durable pager under TempDir, removed on scope
/// exit (durable files survive pager destruction by design, so tests clean
/// up themselves).
struct DurablePair {
  explicit DurablePair(const std::string& tag) {
    wal = ::testing::TempDir() + "ds_wal_" + tag + ".wal";
    spill = ::testing::TempDir() + "ds_wal_" + tag + ".spill";
    std::remove(wal.c_str());
    std::remove(spill.c_str());
  }
  ~DurablePair() {
    std::remove(wal.c_str());
    std::remove(spill.c_str());
  }
  PagerConfig Config(size_t cap = 0) const {
    PagerConfig config;
    config.max_resident_pages = cap;
    config.spill_path = spill;
    config.wal_path = wal;
    config.durable_spill = true;
    return config;
  }
  std::string wal, spill;
};

std::string ReadFileBytes(const std::string& path) {
  std::FILE* f = std::fopen(path.c_str(), "rb");
  EXPECT_NE(f, nullptr) << path;
  std::string out;
  char buf[4096];
  size_t n;
  while ((n = std::fread(buf, 1, sizeof buf, f)) > 0) out.append(buf, n);
  std::fclose(f);
  return out;
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::FILE* f = std::fopen(path.c_str(), "wb");
  ASSERT_NE(f, nullptr) << path;
  ASSERT_EQ(std::fwrite(bytes.data(), 1, bytes.size(), f), bytes.size());
  std::fclose(f);
}

long FileSizeBytes(const std::string& path) {
  struct stat st;
  if (::stat(path.c_str(), &st) != 0) return -1;
  return static_cast<long>(st.st_size);
}

/// Deterministic mixed-type probe (same shape as eviction_test's).
Value ProbeValue(uint64_t seed) {
  switch (seed % 6) {
    case 0:
      return Value::Int(static_cast<int64_t>(seed) * 31 - 7);
    case 1:
      return Value::Real(static_cast<double>(seed) / 3.0);
    case 2:
      return Value::Bool(seed % 2 == 0);
    case 3:
      return Value::Text(std::string(seed % 40, 'x') + std::to_string(seed));
    case 4:
      return Value::Null();
    default:
      return Value::Error("#E" + std::to_string(seed % 9) + "!");
  }
}

// ---------------------------------------------------------------------------
// CRC and Wal-level framing
// ---------------------------------------------------------------------------

TEST(WalRecordTest, Crc32MatchesTheReferenceVector) {
  const char* check = "123456789";
  EXPECT_EQ(Crc32(check, 9), 0xCBF43926u);
  EXPECT_EQ(Crc32("", 0), 0u);
  // Seed chaining == one-shot over the concatenation.
  uint32_t part = Crc32(check, 4);
  EXPECT_EQ(Crc32(check + 4, 5, part), 0xCBF43926u);
}

TEST(WalFramingTest, AppendSyncReopenReplaysInOrder) {
  DurablePair pair("framing");
  {
    Wal wal(pair.wal);
    EXPECT_FALSE(wal.Open([](const Wal::Record&) { FAIL(); }));
    wal.RewriteWithCheckpoint("snapshot-zero");
    wal.Append(WalRecordType::kCreateFile, "aaa");
    wal.Append(WalRecordType::kUpdate, std::string("b\0b", 3));
    wal.Append(WalRecordType::kTruncate, "");
    wal.Sync();
    EXPECT_EQ(wal.durable_lsn(), wal.next_lsn());
  }
  Wal wal(pair.wal);
  std::vector<Wal::Record> records;
  ASSERT_TRUE(wal.Open([&](const Wal::Record& rec) { records.push_back(rec); }));
  ASSERT_EQ(records.size(), 5u);  // checkpoint, end, + 3 appends
  EXPECT_EQ(records[0].type, WalRecordType::kCheckpoint);
  EXPECT_EQ(records[0].payload, "snapshot-zero");
  EXPECT_EQ(records[1].type, WalRecordType::kCheckpointEnd);
  EXPECT_EQ(records[2].payload, "aaa");
  EXPECT_EQ(records[3].payload, std::string("b\0b", 3));
  EXPECT_EQ(records[4].type, WalRecordType::kTruncate);
  for (size_t i = 1; i < records.size(); ++i) {
    EXPECT_GT(records[i].lsn, records[i - 1].lsn) << "LSNs must be monotonic";
  }
}

TEST(WalFramingTest, TornTailYieldsRecordBoundaryPrefixAndCrcRejects) {
  DurablePair pair("torn_framing");
  std::vector<uint64_t> boundaries;  // file size after each complete record
  {
    Wal wal(pair.wal);
    wal.RewriteWithCheckpoint("s");
    for (int i = 0; i < 6; ++i) {
      wal.Append(WalRecordType::kUpdate, std::string(10 + i, 'p'));
      wal.Sync();
      boundaries.push_back(
          static_cast<uint64_t>(FileSizeBytes(pair.wal)) +
          0);  // Sync drains, so the physical size is the boundary
    }
  }
  std::string full = ReadFileBytes(pair.wal);
  ASSERT_EQ(boundaries.back(), full.size());
  // Every truncation length recovers exactly the records that fully fit.
  for (size_t len = boundaries.front() - 1; len <= full.size(); ++len) {
    WriteFileBytes(pair.wal, full.substr(0, len));
    Wal wal(pair.wal);
    size_t appended = 0;
    ASSERT_TRUE(wal.Open([&](const Wal::Record& rec) {
      if (rec.type == WalRecordType::kUpdate) ++appended;
    }));
    size_t expect = 0;
    for (uint64_t b : boundaries) {
      if (b <= len) ++expect;
    }
    EXPECT_EQ(appended, expect) << "truncated at " << len;
    // The torn tail was physically dropped: reopening sees a clean end.
    EXPECT_LE(FileSizeBytes(pair.wal), static_cast<long>(len));
  }
  // A flipped byte inside the last record body fails its CRC: the scan
  // stops at the previous record even though the length field is intact.
  std::string corrupt = full;
  corrupt[corrupt.size() - 2] ^= 0x40;
  WriteFileBytes(pair.wal, corrupt);
  Wal wal(pair.wal);
  size_t appended = 0;
  ASSERT_TRUE(wal.Open([&](const Wal::Record& rec) {
    if (rec.type == WalRecordType::kUpdate) ++appended;
  }));
  EXPECT_EQ(appended, 5u);
}

// ---------------------------------------------------------------------------
// Pager-level durability
// ---------------------------------------------------------------------------

TEST(DurabilityTest, CleanShutdownRecoversEveryValueTypeAndShape) {
  DurablePair pair("clean");
  constexpr uint64_t kCount = 5 * kSlots + 37;
  FileId f1 = 0, f2 = 0;
  {
    Pager pager(pair.Config());
    EXPECT_FALSE(pager.recovered());
    f1 = pager.CreateFile();
    f2 = pager.CreateFile();
    for (uint64_t s = 0; s < kCount; ++s) pager.Write(f1, s, ProbeValue(s));
    pager.Write(f2, 3 * kSlots + 5, Value::Text("far write"));
    EXPECT_EQ(pager.Take(f1, 7), ProbeValue(7));
    pager.Truncate(f1, 4 * kSlots + 11);
    // Destructor: checkpoint — the durable pair now holds everything.
  }
  EXPECT_GT(FileSizeBytes(pair.wal), 0);
  EXPECT_GT(FileSizeBytes(pair.spill), 0);

  Pager pager(pair.Config());
  EXPECT_TRUE(pager.recovered());
  ASSERT_TRUE(pager.HasFile(f1));
  ASSERT_TRUE(pager.HasFile(f2));
  EXPECT_EQ(pager.FileSize(f1), 4 * kSlots + 11);
  for (uint64_t s = 0; s < 4 * kSlots + 11; ++s) {
    if (s == 7) {
      EXPECT_TRUE(pager.Read(f1, s).is_null());
    } else {
      ASSERT_EQ(pager.Read(f1, s), ProbeValue(s)) << "slot " << s;
    }
  }
  EXPECT_EQ(pager.Read(f2, 3 * kSlots + 5), Value::Text("far write"));
  EXPECT_TRUE(pager.Read(f2, 0).is_null());  // never-written page recovered
  EXPECT_EQ(pager.FilePages(f2), 4u);
}

TEST(DurabilityTest, CrashWithoutCheckpointReplaysTheLogTail) {
  DurablePair pair("crash_tail");
  {
    Pager pager(pair.Config());
    FileId f = pager.CreateFile();
    for (uint64_t s = 0; s < 2 * kSlots; ++s) {
      pager.Write(f, s, ProbeValue(s * 3));
    }
    pager.CrashForTesting();  // no checkpoint: recovery must replay redo
    // After the simulated crash the pager degrades to a scratch pool:
    // mutations (incl. cursor writes and truncates) must not reach — or
    // abort on — the dead WAL, so storages above it can still destruct.
    pager.Write(f, 0, Value::Int(-999));
    (void)pager.Take(f, 1);
    storage::PageCursor cursor(pager, f);
    cursor.Write(2, Value::Int(-998));
    cursor.Release();
    pager.Truncate(f, kSlots);
    pager.DropFile(pager.CreateFile());
  }
  Pager pager(pair.Config());
  EXPECT_TRUE(pager.recovered());
  EXPECT_GT(pager.recovery_records(), 0u);
  EXPECT_GT(pager.recovery_bytes(), 0u);
  FileId f = 1;
  ASSERT_TRUE(pager.HasFile(f));
  for (uint64_t s = 0; s < 2 * kSlots; ++s) {
    ASSERT_EQ(pager.Read(f, s), ProbeValue(s * 3)) << "slot " << s;
  }
}

TEST(DurabilityTest, CrashUnderEvictionPressureRecoversBehindTheSamePool) {
  // The workload evicts constantly (12 pages through 2 frames), so the
  // crash lands with most pages only on disk, written back mid-scan — the
  // "kill during eviction write-back" acceptance case. Recovery itself runs
  // behind the same 2-frame pool.
  DurablePair pair("evict_crash");
  constexpr uint64_t kCount = 12 * kSlots;
  {
    Pager pager(pair.Config(/*cap=*/2));
    FileId f = pager.CreateFile();
    for (uint64_t s = 0; s < kCount; ++s) pager.Write(f, s, ProbeValue(s));
    EXPECT_GT(pager.stats().evictions, 0u);
    pager.CrashForTesting();
  }
  Pager pager(pair.Config(/*cap=*/2));
  EXPECT_TRUE(pager.recovered());
  EXPECT_LE(pager.resident_pages(), 2u);
  FileId f = 1;
  for (uint64_t s = 0; s < kCount; ++s) {
    ASSERT_EQ(pager.Read(f, s), ProbeValue(s)) << "slot " << s;
    ASSERT_LE(pager.resident_pages(), 2u);
  }
  EXPECT_GT(pager.stats().faults, 0u);
}

TEST(DurabilityTest, PinGrowthAndUnpinDirtyMutationsAreDurable) {
  DurablePair pair("pin_unpin");
  {
    Pager pager(pair.Config());
    FileId f = pager.CreateFile();
    ValuePage* page = pager.Pin(f, 6);  // grows the chain to 7 pages
    page->slot(13) = Value::Text("raw page edit");
    pager.Unpin(page, /*dirtied=*/true);  // logged as a full-page image
    pager.CrashForTesting();
  }
  Pager pager(pair.Config());
  FileId f = 1;
  EXPECT_EQ(pager.FilePages(f), 7u);  // pure capacity growth recovered
  EXPECT_EQ(pager.Read(f, 6 * kSlots + 13), Value::Text("raw page edit"));
}

// ---------------------------------------------------------------------------
// Torn-tail fuzz: truncate the log at every byte offset
// ---------------------------------------------------------------------------

/// Visible state of a pager: live files, their logical sizes, and every
/// addressable-by-size slot. FilePages is deliberately not compared — a
/// kGrow record without its following update is an invisible capacity
/// change, exactly like a crash between the two.
struct VisibleState {
  std::map<FileId, std::vector<Value>> files;  // values[0, size)
  bool operator==(const VisibleState& o) const { return files == o.files; }
};

VisibleState CaptureState(Pager& pager, const std::vector<FileId>& ids) {
  VisibleState st;
  for (FileId f : ids) {
    if (!pager.HasFile(f)) continue;
    std::vector<Value>& vals = st.files[f];
    vals.resize(pager.FileSize(f));
    for (uint64_t s = 0; s < vals.size(); ++s) vals[s] = pager.Read(f, s);
  }
  return st;
}

TEST(WalTornTailFuzzTest, EveryByteTruncationRecoversACleanOpPrefix) {
  DurablePair pair("fuzz");
  DurablePair scratch("fuzz_scratch");
  std::vector<FileId> ids;
  std::vector<VisibleState> snapshots;  // expected state after op k
  {
    // Single-record ops only (single-slot writes/takes, truncates), so
    // every op boundary is a record boundary; the interleaved kGrow and
    // full-page-image records collapse into the same op's prefix because
    // the comparison is content-only.
    Pager pager(pair.Config(/*cap=*/2));
    Pager shadow;  // unbounded scratch twin, mirrors every op
    snapshots.push_back(CaptureState(shadow, ids));  // the empty birth state
    ids.push_back(pager.CreateFile());
    (void)shadow.CreateFile();
    snapshots.push_back(CaptureState(shadow, ids));
    ids.push_back(pager.CreateFile());
    (void)shadow.CreateFile();
    snapshots.push_back(CaptureState(shadow, ids));
    std::mt19937 rng(424242);
    for (int op = 0; op < 40; ++op) {
      FileId f = ids[rng() % ids.size()];
      uint64_t roll = rng() % 10;
      if (roll < 7) {
        uint64_t slot = rng() % (4 * kSlots);
        Value v = ProbeValue(rng());
        pager.Write(f, slot, v);
        shadow.Write(f, slot, v);
      } else if (roll < 8 && pager.FileSize(f) > 0) {
        uint64_t slot = rng() % pager.FileSize(f);
        ASSERT_EQ(pager.Take(f, slot), shadow.Take(f, slot));
      } else {
        uint64_t keep = pager.FileSize(f) == 0
                            ? 0
                            : rng() % (pager.FileSize(f) + 1);
        pager.Truncate(f, keep);
        shadow.Truncate(f, keep);
      }
      snapshots.push_back(CaptureState(shadow, ids));
    }
    pager.CrashForTesting();  // drains: the on-disk log is the full stream
  }

  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytes(pair.spill);
  ASSERT_GT(wal_bytes.size(), Wal::kFileHeaderBytes);
  // The checkpoint-zero head (snapshot + end bracket) is written by an
  // atomic rename, so truncations inside it model no real crash; the fuzz
  // starts right after it. Parse the two record lengths to find that point.
  size_t safe_start = Wal::kFileHeaderBytes;
  for (int i = 0; i < 2; ++i) {
    uint32_t body_len;
    std::memcpy(&body_len, wal_bytes.data() + safe_start, sizeof body_len);
    safe_start += Wal::kRecordHeaderBytes + body_len;
  }

  size_t last_matched = 0;
  for (size_t len = safe_start; len <= wal_bytes.size(); ++len) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    Pager recovered(scratch.Config(/*cap=*/2));
    VisibleState got = CaptureState(recovered, ids);
    // The recovered state must be exactly one of the per-op states, and
    // the matched op index must be monotone in the truncation point.
    size_t matched = snapshots.size();
    for (size_t k = last_matched; k < snapshots.size(); ++k) {
      if (got == snapshots[k]) {
        matched = k;
        break;
      }
    }
    ASSERT_LT(matched, snapshots.size())
        << "state after truncating the WAL at byte " << len
        << " matches no operation prefix";
    last_matched = matched;
  }
  EXPECT_EQ(last_matched, snapshots.size() - 1)
      << "the full log must recover the full workload";

  // CRC rejection at the pager level: corrupt a byte mid-log; recovery must
  // stop at the corruption and still land on a clean op prefix.
  std::string corrupt = wal_bytes;
  corrupt[safe_start + (corrupt.size() - safe_start) / 2] ^= 0x5A;
  WriteFileBytes(scratch.wal, corrupt);
  WriteFileBytes(scratch.spill, spill_bytes);
  Pager recovered(scratch.Config(/*cap=*/2));
  VisibleState got = CaptureState(recovered, ids);
  bool found = false;
  for (size_t k = 0; k + 1 < snapshots.size(); ++k) {
    if (got == snapshots[k]) {
      found = true;
      break;
    }
  }
  EXPECT_TRUE(found) << "corruption must truncate replay to an earlier "
                        "op prefix, never invent state";
}

// ---------------------------------------------------------------------------
// Statement brackets: byte cuts recover a committed-STATEMENT prefix
// ---------------------------------------------------------------------------

TEST(StatementBracketFuzzTest, EveryByteTruncationRecoversACommittedPrefix) {
  // Like the op-prefix fuzz above, but the workload is grouped into
  // multi-record statement brackets (kTxnBegin ... kTxnCommit/kTxnAbort).
  // Recovery must land on a *statement* boundary: a cut anywhere inside a
  // bracket — including inside its closing record — discards the bracket
  // wholesale, and an aborted bracket is a net no-op at any cut.
  DurablePair pair("stmt_fuzz");
  DurablePair scratch("stmt_fuzz_scratch");
  std::vector<FileId> ids;
  std::vector<VisibleState> boundaries;  // expected state after statement k
  {
    Pager pager(pair.Config(/*cap=*/2));
    Pager shadow;  // unbounded twin, advanced only by committed statements
    boundaries.push_back(CaptureState(shadow, ids));
    ids.push_back(pager.CreateFile());
    (void)shadow.CreateFile();
    boundaries.push_back(CaptureState(shadow, ids));
    ids.push_back(pager.CreateFile());
    (void)shadow.CreateFile();
    boundaries.push_back(CaptureState(shadow, ids));
    std::mt19937 rng(90210);
    for (int stmt = 0; stmt < 24; ++stmt) {
      FileId f = ids[rng() % ids.size()];
      bool abort = stmt % 5 == 4 && pager.FileSize(f) > 0;
      pager.BeginStatement();
      if (abort) {
        // Overwrite existing slots, then log the compensations and close
        // with kTxnAbort — the bracket replays as a net no-op, so the
        // shadow (and every boundary) never sees it.
        std::vector<std::pair<uint64_t, Value>> undo;
        for (int i = 0; i < 3; ++i) {
          uint64_t slot = rng() % pager.FileSize(f);
          undo.emplace_back(slot, pager.Read(f, slot));
          pager.Write(f, slot, ProbeValue(rng()));
        }
        for (size_t i = undo.size(); i-- > 0;) {
          pager.Write(f, undo[i].first, undo[i].second);
        }
        pager.EndStatement(/*commit=*/false);
      } else {
        int ops = 2 + static_cast<int>(rng() % 4);
        for (int i = 0; i < ops; ++i) {
          if (rng() % 8 == 0 && pager.FileSize(f) > 0) {
            uint64_t keep = rng() % (pager.FileSize(f) + 1);
            pager.Truncate(f, keep);
            shadow.Truncate(f, keep);
          } else {
            uint64_t slot = rng() % (3 * kSlots);
            Value v = ProbeValue(rng());
            pager.Write(f, slot, v);
            shadow.Write(f, slot, v);
          }
        }
        pager.EndStatement(/*commit=*/true);
      }
      boundaries.push_back(CaptureState(shadow, ids));
    }
    pager.CrashForTesting();  // drains: the on-disk log is the full stream
  }

  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytes(pair.spill);
  ASSERT_GT(wal_bytes.size(), Wal::kFileHeaderBytes);
  size_t safe_start = Wal::kFileHeaderBytes;
  for (int i = 0; i < 2; ++i) {
    uint32_t body_len;
    std::memcpy(&body_len, wal_bytes.data() + safe_start, sizeof body_len);
    safe_start += Wal::kRecordHeaderBytes + body_len;
  }

  size_t last_matched = 0;
  for (size_t len = safe_start; len <= wal_bytes.size(); ++len) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    Pager recovered(scratch.Config(/*cap=*/2));
    VisibleState got = CaptureState(recovered, ids);
    size_t matched = boundaries.size();
    for (size_t k = last_matched; k < boundaries.size(); ++k) {
      if (got == boundaries[k]) {
        matched = k;
        break;
      }
    }
    ASSERT_LT(matched, boundaries.size())
        << "state after truncating the WAL at byte " << len
        << " matches no committed-statement boundary";
    last_matched = matched;
  }
  EXPECT_EQ(last_matched, boundaries.size() - 1)
      << "the full log must recover the full committed workload";
}

// ---------------------------------------------------------------------------
// Transaction brackets: byte cuts recover a committed-TRANSACTION prefix
// ---------------------------------------------------------------------------

TEST(TxnBracketFuzzTest, EveryByteTruncationRecoversACommittedTxnPrefix) {
  // The statement fuzz above, one level up: each bracket is a transaction
  // of several statements (BeginStatement(txn_id) joins the transaction's
  // context at depth > 1, so the statements' own EndStatement calls emit
  // nothing). The tape mixes committed and
  // aborted transactions and ends with an OPEN one at the crash — no cut
  // may surface a single statement of an unterminated transaction.
  DurablePair pair("txn_bracket_fuzz");
  DurablePair scratch("txn_bracket_fuzz_scratch");
  std::vector<FileId> ids;
  std::vector<VisibleState> boundaries;  // expected state after txn k
  {
    Pager pager(pair.Config(/*cap=*/2));
    Pager shadow;  // unbounded twin, advanced only by committed transactions
    boundaries.push_back(CaptureState(shadow, ids));
    ids.push_back(pager.CreateFile());
    (void)shadow.CreateFile();
    boundaries.push_back(CaptureState(shadow, ids));
    ids.push_back(pager.CreateFile());
    (void)shadow.CreateFile();
    boundaries.push_back(CaptureState(shadow, ids));
    std::mt19937 rng(41507);
    for (int txn = 0; txn < 12; ++txn) {
      // Aborts fall mid-tape (never on the last txn: an aborted boundary
      // duplicates its predecessor, which the first-match scan below could
      // then never reach as the final index).
      bool abort = txn % 4 == 1 && pager.FileSize(ids[0]) > 0 &&
                   pager.FileSize(ids[1]) > 0;
      TxnId txn_id = pager.BeginTxn();
      // Aborted transactions record before-images and log the compensations
      // in reverse before AbortTxn — the logical-undo shape the Database
      // layer produces — so the bracket replays as a net no-op.
      std::vector<std::pair<FileId, std::pair<uint64_t, Value>>> undo;
      int stmts = 2 + static_cast<int>(rng() % 3);
      for (int s = 0; s < stmts; ++s) {
        pager.BeginStatement(txn_id);
        int ops = 1 + static_cast<int>(rng() % 3);
        for (int i = 0; i < ops; ++i) {
          FileId f = ids[rng() % ids.size()];
          if (abort) {
            uint64_t slot = rng() % pager.FileSize(f);
            undo.push_back({f, {slot, pager.Read(f, slot)}});
            pager.Write(f, slot, ProbeValue(rng()));
          } else if (rng() % 8 == 0 && pager.FileSize(f) > 0) {
            uint64_t keep = rng() % (pager.FileSize(f) + 1);
            pager.Truncate(f, keep);
            shadow.Truncate(f, keep);
          } else {
            uint64_t slot = rng() % (3 * kSlots);
            Value v = ProbeValue(rng());
            pager.Write(f, slot, v);
            shadow.Write(f, slot, v);
          }
        }
        pager.EndStatement(/*commit=*/true);  // depth > 0: no record
      }
      if (abort) {
        // Compensations must ride the transaction's bracket (the Database
        // layer guarantees this via the table's owning-txn context): bound
        // to the txn id, like any other statement of the transaction.
        pager.BeginStatement(txn_id);
        for (size_t i = undo.size(); i-- > 0;) {
          pager.Write(undo[i].first, undo[i].second.first,
                      undo[i].second.second);
        }
        pager.EndStatement(/*commit=*/true);
        pager.AbortTxn(txn_id);
      } else {
        pager.CommitTxn(txn_id);
      }
      boundaries.push_back(CaptureState(shadow, ids));
    }
    // The open transaction: three statements logged, bracket never closed.
    TxnId open_txn = pager.BeginTxn();
    for (int s = 0; s < 3; ++s) {
      pager.BeginStatement(open_txn);
      pager.Write(ids[s % ids.size()], rng() % (3 * kSlots), ProbeValue(rng()));
      pager.EndStatement(/*commit=*/true);
    }
    pager.CrashForTesting();  // drains: the on-disk log is the full stream
  }

  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytes(pair.spill);
  ASSERT_GT(wal_bytes.size(), Wal::kFileHeaderBytes);
  size_t safe_start = Wal::kFileHeaderBytes;
  for (int i = 0; i < 2; ++i) {
    uint32_t body_len;
    std::memcpy(&body_len, wal_bytes.data() + safe_start, sizeof body_len);
    safe_start += Wal::kRecordHeaderBytes + body_len;
  }

  size_t last_matched = 0;
  for (size_t len = safe_start; len <= wal_bytes.size(); ++len) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    Pager recovered(scratch.Config(/*cap=*/2));
    VisibleState got = CaptureState(recovered, ids);
    size_t matched = boundaries.size();
    for (size_t k = last_matched; k < boundaries.size(); ++k) {
      if (got == boundaries[k]) {
        matched = k;
        break;
      }
    }
    ASSERT_LT(matched, boundaries.size())
        << "state after truncating the WAL at byte " << len
        << " matches no committed-transaction boundary";
    last_matched = matched;
  }
  // The full log ends inside the open transaction, whose bracket is
  // discarded wholesale: the final state is the last *committed* boundary.
  EXPECT_EQ(last_matched, boundaries.size() - 1)
      << "the full log must recover every committed transaction";
}

// ---------------------------------------------------------------------------
// Interleaved transaction brackets: multi-writer WAL, every cut recovers
// exactly the committed-bracket set
// ---------------------------------------------------------------------------

TEST(InterleavedTxnBracketFuzzTest,
     EveryByteTruncationRecoversTheCommittedBracketSet) {
  // The multi-writer log shape: three transactions concurrently open in one
  // WAL, their id-tagged records interleaved statement by statement, each
  // touching its own file (the disjoint-pages guarantee the Database's
  // write latches provide). Rounds mix committed and aborted fates and the
  // final round leaves one bracket open at the crash. Every byte cut must
  // recover exactly the set of brackets whose close record survived the
  // cut — equivalently, the committed-close *prefix*, since closes are
  // totally ordered in the log and each close touches only its own file.
  DurablePair pair("interleaved_txn_fuzz");
  DurablePair scratch("interleaved_txn_fuzz_scratch");
  std::vector<FileId> ids;
  std::vector<VisibleState> boundaries;
  {
    Pager pager(pair.Config(/*cap=*/2));
    Pager shadow;  // advanced only as commits *close*, in close order
    boundaries.push_back(CaptureState(shadow, ids));
    for (int i = 0; i < 3; ++i) {
      ids.push_back(pager.CreateFile());
      (void)shadow.CreateFile();
      boundaries.push_back(CaptureState(shadow, ids));
    }
    std::mt19937 rng(90210);
    uint64_t stamp = 0;  // distinct-value source: every commit moves state
    constexpr int kRounds = 4;
    for (int round = 0; round < kRounds; ++round) {
      struct LiveTxn {
        TxnId id;
        FileId file;
        int fate;  // 0 = commit, 1 = abort, 2 = open at crash
        std::vector<std::pair<uint64_t, Value>> writes;  // committed replay
        std::vector<std::pair<uint64_t, Value>> undo;    // aborted before-images
      };
      std::vector<LiveTxn> live;
      for (int t = 0; t < 3; ++t) {
        int fate = (t == 1 && round % 2 == 1) ? 1 : 0;
        if (round == kRounds - 1 && t == 2) fate = 2;  // torn at the crash
        live.push_back(LiveTxn{pager.BeginTxn(), ids[t], fate, {}, {}});
      }
      // Interleave: statement s of every transaction before statement s+1
      // of any — three brackets genuinely open at once.
      for (int s = 0; s < 3; ++s) {
        for (LiveTxn& lt : live) {
          pager.BeginStatement(lt.id);
          int ops = 1 + static_cast<int>(rng() % 2);
          for (int i = 0; i < ops; ++i) {
            uint64_t slot = rng() % (2 * kSlots);
            Value v = (lt.fate == 0 && i == 0)
                          ? Value::Text("c" + std::to_string(stamp++))
                          : ProbeValue(rng());
            if (lt.fate == 1) {
              // Stay inside the existing file: an aborted bracket must
              // replay as a net no-op, and undo restores values, not sizes.
              uint64_t fsz = pager.FileSize(lt.file);
              ASSERT_GT(fsz, 0u);
              uint64_t uslot = slot % fsz;
              lt.undo.push_back({uslot, pager.Read(lt.file, uslot)});
              pager.Write(lt.file, uslot, v);
            } else {
              pager.Write(lt.file, slot, v);
              if (lt.fate == 0) lt.writes.push_back({slot, v});
            }
          }
          pager.EndStatement(/*commit=*/true);
        }
      }
      // Close in rotating order; the open-fated bracket never closes. Each
      // committed close advances the shadow and cuts a boundary.
      for (int k = 0; k < 3; ++k) {
        LiveTxn& lt = live[(k + round) % 3];
        if (lt.fate == 2) continue;
        if (lt.fate == 1) {
          // Compensations ride the bracket, as the Database layer logs them.
          pager.BeginStatement(lt.id);
          for (size_t i = lt.undo.size(); i-- > 0;) {
            pager.Write(lt.file, lt.undo[i].first, lt.undo[i].second);
          }
          pager.EndStatement(/*commit=*/true);
          pager.AbortTxn(lt.id);
        } else {
          pager.CommitTxn(lt.id);
          for (const auto& [slot, v] : lt.writes) shadow.Write(lt.file, slot, v);
          boundaries.push_back(CaptureState(shadow, ids));
        }
      }
    }
    pager.CrashForTesting();  // the open bracket stays torn in the log
  }

  std::string wal_bytes = ReadFileBytes(pair.wal);
  std::string spill_bytes = ReadFileBytes(pair.spill);
  ASSERT_GT(wal_bytes.size(), Wal::kFileHeaderBytes);
  size_t safe_start = Wal::kFileHeaderBytes;
  for (int i = 0; i < 2; ++i) {
    uint32_t body_len;
    std::memcpy(&body_len, wal_bytes.data() + safe_start, sizeof body_len);
    safe_start += Wal::kRecordHeaderBytes + body_len;
  }

  size_t last_matched = 0;
  for (size_t len = safe_start; len <= wal_bytes.size(); ++len) {
    WriteFileBytes(scratch.wal, wal_bytes.substr(0, len));
    WriteFileBytes(scratch.spill, spill_bytes);
    Pager recovered(scratch.Config(/*cap=*/2));
    VisibleState got = CaptureState(recovered, ids);
    size_t matched = boundaries.size();
    for (size_t k = last_matched; k < boundaries.size(); ++k) {
      if (got == boundaries[k]) {
        matched = k;
        break;
      }
    }
    ASSERT_LT(matched, boundaries.size())
        << "state after truncating the WAL at byte " << len
        << " matches no committed-close boundary";
    last_matched = matched;
  }
  // The full log ends with one torn bracket, discarded wholesale: the final
  // state is the last committed-close boundary.
  EXPECT_EQ(last_matched, boundaries.size() - 1)
      << "the full log must recover every committed bracket";
}

// ---------------------------------------------------------------------------
// Full-page images defeat torn spill write-backs
// ---------------------------------------------------------------------------

TEST(TornSpillTest, RecoverySurvivesACompletelyGarbageSpillFile) {
  // Every page of this workload was dirtied after the (initial) checkpoint,
  // so each has a full-page image in the log and replay must never read a
  // spill base. Overwriting the whole spill heap with garbage — the worst
  // possible torn write-back — must therefore not matter.
  DurablePair pair("torn_spill");
  constexpr uint64_t kCount = 8 * kSlots;
  {
    Pager pager(pair.Config(/*cap=*/2));
    FileId f = pager.CreateFile();
    for (uint64_t s = 0; s < kCount; ++s) pager.Write(f, s, ProbeValue(s + 1));
    EXPECT_GT(pager.stats().evictions, 0u);  // spill holds real bases
    pager.CrashForTesting();
  }
  long spill_size = FileSizeBytes(pair.spill);
  ASSERT_GT(spill_size, 0);
  WriteFileBytes(pair.spill, std::string(static_cast<size_t>(spill_size),
                                         '\xFF'));

  Pager pager(pair.Config(/*cap=*/2));
  FileId f = 1;
  for (uint64_t s = 0; s < kCount; ++s) {
    ASSERT_EQ(pager.Read(f, s), ProbeValue(s + 1)) << "slot " << s;
  }
}

// ---------------------------------------------------------------------------
// Randomized shadow-model recovery property (crash → recover → continue →
// crash again), the eviction_test shadow style
// ---------------------------------------------------------------------------

class WalShadowTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(WalShadowTest, CrashRecoverContinueMatchesShadowUnderTinyPool) {
  DurablePair pair("shadow_" + std::to_string(GetParam()));
  std::mt19937 rng(GetParam());
  constexpr int kFiles = 3;
  constexpr uint64_t kMaxSlots = 10 * kSlots;
  std::vector<FileId> files;
  std::vector<std::vector<Value>> shadow(kFiles);

  auto mutate = [&](Pager& pager, int ops) {
    for (int op = 0; op < ops; ++op) {
      int i = static_cast<int>(rng() % kFiles);
      FileId f = files[i];
      std::vector<Value>& sh = shadow[i];
      switch (rng() % 10) {
        case 0:
        case 1:
        case 2:
        case 3: {  // slot write (grows like the pager does)
          uint64_t slot = rng() % kMaxSlots;
          Value v = ProbeValue(rng());
          pager.Write(f, slot, v);
          uint64_t capacity = ((slot / kSlots) + 1) * kSlots;
          if (sh.size() < capacity) sh.resize(capacity, Value::Null());
          sh[slot] = std::move(v);
          break;
        }
        case 4: {  // bulk range write through a cursor
          uint64_t start = rng() % (kMaxSlots - kSlots);
          uint64_t count = 1 + rng() % (2 * kSlots);
          std::vector<Value> vals;
          for (uint64_t k = 0; k < count; ++k) vals.push_back(ProbeValue(rng()));
          storage::PageCursor cursor(pager, f);
          cursor.WriteRange(start, vals.data(), count);
          uint64_t cap = (start + count + kSlots - 1) / kSlots * kSlots;
          if (sh.size() < cap) sh.resize(cap, Value::Null());
          for (uint64_t k = 0; k < count; ++k) sh[start + k] = vals[k];
          break;
        }
        case 5: {  // take
          if (sh.empty()) break;
          uint64_t slot = rng() % sh.size();
          ASSERT_EQ(pager.Take(f, slot), sh[slot]) << "op " << op;
          sh[slot] = Value::Null();
          break;
        }
        case 6: {  // truncate or drop+recreate
          if (rng() % 4 == 0) {
            pager.DropFile(f);
            files[i] = pager.CreateFile();
            sh.clear();
          } else {
            uint64_t keep = rng() % (pager.FileSize(f) + 1);
            pager.Truncate(f, keep);
            uint64_t keep_cap = (keep + kSlots - 1) / kSlots * kSlots;
            sh.resize(keep_cap);
            for (uint64_t s = keep; s < sh.size(); ++s) sh[s] = Value::Null();
          }
          break;
        }
        case 7: {  // durability barriers
          if (rng() % 4 == 0) {
            (void)pager.FlushAll();  // a real mid-workload fuzzy checkpoint
          } else {
            pager.SyncWal();
          }
          break;
        }
        default: {  // read-validate
          if (sh.empty()) break;
          uint64_t slot = rng() % sh.size();
          ASSERT_EQ(pager.Read(f, slot), sh[slot]) << "op " << op;
          break;
        }
      }
      ASSERT_LE(pager.resident_pages(), 4u) << "op " << op;
    }
  };
  auto verify_all = [&](Pager& pager) {
    for (int i = 0; i < kFiles; ++i) {
      ASSERT_TRUE(pager.HasFile(files[i]));
      // The shadow is capacity-rounded (whole pages), so it also checks the
      // NULL tail between logical size and page capacity.
      for (uint64_t s = 0; s < shadow[i].size(); ++s) {
        ASSERT_EQ(pager.Read(files[i], s), shadow[i][s])
            << "file " << i << " slot " << s;
      }
    }
  };

  {
    Pager pager(pair.Config(/*cap=*/4));
    for (int i = 0; i < kFiles; ++i) files.push_back(pager.CreateFile());
    mutate(pager, 1500);
    pager.CrashForTesting();
  }
  {
    Pager pager(pair.Config(/*cap=*/4));
    EXPECT_TRUE(pager.recovered());
    verify_all(pager);
    mutate(pager, 800);  // a recovered pager is a fully live pager
    pager.CrashForTesting();
  }
  Pager pager(pair.Config(/*cap=*/4));
  EXPECT_TRUE(pager.recovered());
  verify_all(pager);
  EXPECT_GT(pager.stats().faults, 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, WalShadowTest,
                         ::testing::Values(7u, 3511u, 271828u));

// ---------------------------------------------------------------------------
// All four storage models recover byte-identically
// ---------------------------------------------------------------------------

class ModelRecoveryTest : public ::testing::TestWithParam<StorageModel> {};

TEST_P(ModelRecoveryTest, CrashAndReplayIsByteIdenticalWithAScratchTwin) {
  StorageModel model = GetParam();
  DurablePair pair(std::string("model_") + StorageModelName(model));
  // The same workload drives a durable bounded store and a scratch
  // unbounded twin; after the crash, a bare pager recovered from the
  // durable pair must hold file-for-file, slot-for-slot identical state.
  auto drive = [](TableStorage& store) {
    std::mt19937 rng(99);
    Row r(3);
    for (int i = 0; i < 700; ++i) {
      r[0] = Value::Int(i);
      r[1] = (i % 5 == 0) ? Value::Null()
                          : Value::Text("name-" + std::to_string(i % 90));
      r[2] = Value::Real(i / 7.0);
      ASSERT_TRUE(store.AppendRow(r).ok());
    }
    for (int i = 0; i < 150; ++i) {
      size_t row = rng() % store.num_rows();
      size_t col = rng() % store.num_columns();
      // Cell stores reject ERROR values; remap that probe case to TEXT.
      Value v = ProbeValue(rng());
      if (v.type() == DataType::kError) v = Value::Text(v.error_code());
      ASSERT_TRUE(store.Set(row, col, std::move(v)).ok());
    }
    for (int i = 0; i < 60; ++i) {
      ASSERT_TRUE(store.DeleteRow(rng() % store.num_rows()).ok());
    }
    ASSERT_TRUE(store.AddColumn(Value::Int(-1)).ok());
    for (int i = 0; i < 40; ++i) {
      size_t row = rng() % store.num_rows();
      ASSERT_TRUE(store.Set(row, store.num_columns() - 1,
                            Value::Text("post-alter " + std::to_string(i)))
                      .ok());
    }
    ASSERT_TRUE(store.DropColumn(1).ok());
    // Durable DDL retires replaced files instead of dropping them (the
    // catalog layer drops after logging its DDL record); a bare storage
    // drops them itself. No-op for the scratch twin.
    for (FileId f : store.TakeRetiredFiles()) store.pager().DropFile(f);
  };

  auto durable = CreateStorage(model, 3, nullptr, pair.Config(/*cap=*/8));
  auto twin = CreateStorage(model, 3, nullptr, PagerConfig{});
  drive(*durable);
  drive(*twin);
  EXPECT_GT(durable->pager().stats().evictions, 0u)
      << "the workload must crash with write-backs in flight";
  StorageManifest durable_manifest = durable->Manifest();
  StorageManifest twin_manifest = twin->Manifest();
  durable->pager().CrashForTesting();

  Pager recovered(pair.Config(/*cap=*/8));
  EXPECT_TRUE(recovered.recovered());
  Pager& expect = twin->pager();
  // Pair data files through the manifests: a durable RCV store interleaves
  // row back-pointer files the scratch twin never creates, so raw file-id
  // equality no longer holds — the manifest names which file is which.
  std::vector<std::pair<FileId, FileId>> file_pairs;  // recovered, twin
  if (model == StorageModel::kHybrid) {
    ASSERT_EQ(durable_manifest.groups.size(), twin_manifest.groups.size());
    for (size_t g = 0; g < durable_manifest.groups.size(); ++g) {
      file_pairs.emplace_back(durable_manifest.groups[g].file,
                              twin_manifest.groups[g].file);
    }
  } else if (model == StorageModel::kRcv) {
    for (size_t c = 0; c < durable_manifest.num_columns; ++c) {
      file_pairs.emplace_back(durable_manifest.files[2 * c],
                              twin_manifest.files[2 * c]);
    }
  } else {
    ASSERT_EQ(durable_manifest.files.size(), twin_manifest.files.size());
    for (size_t i = 0; i < durable_manifest.files.size(); ++i) {
      file_pairs.emplace_back(durable_manifest.files[i],
                              twin_manifest.files[i]);
    }
  }
  // Every manifest file (back-pointer files included) must have survived,
  // and nothing else: recovery neither leaks nor invents files.
  size_t live_manifest_files = 0;
  for (FileId f : durable_manifest.files) {
    if (f == 0) continue;
    live_manifest_files += 1;
    EXPECT_TRUE(recovered.HasFile(f)) << "file " << f;
  }
  for (const StorageManifest::Group& g : durable_manifest.groups) {
    live_manifest_files += 1;
    EXPECT_TRUE(recovered.HasFile(g.file)) << "group file " << g.file;
  }
  EXPECT_EQ(recovered.FileIds().size(), live_manifest_files);
  for (const auto& [rf, tf] : file_pairs) {
    ASSERT_EQ(recovered.FileSize(rf), expect.FileSize(tf))
        << "file " << rf << " vs twin " << tf;
    ASSERT_EQ(recovered.FilePages(rf), expect.FilePages(tf))
        << "file " << rf << " vs twin " << tf;
    if (model == StorageModel::kRcv) {
      // The RCV triple heap is an unordered set of values addressed through
      // the point index: the durable store's crash-redoable delete ordering
      // (erase/copy/erase phases) compacts the heap in a different slot
      // order than the scratch twin's interleaved version, so compare the
      // heaps as multisets. Logical row-level equality is covered by
      // catalog_recovery_test.
      std::unordered_map<Value, int, ValueHash> counts;
      for (uint64_t s = 0; s < expect.FileSize(tf); ++s) {
        counts[expect.Read(tf, s)] += 1;
        counts[recovered.Read(rf, s)] -= 1;
      }
      for (const auto& [value, count] : counts) {
        ASSERT_EQ(count, 0) << "file " << rf << " multiset diverges at "
                            << value.ToDisplayString();
      }
      continue;
    }
    for (uint64_t s = 0; s < expect.FileSize(tf); ++s) {
      ASSERT_EQ(recovered.Read(rf, s), expect.Read(tf, s))
          << "file " << rf << " slot " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(AllModels, ModelRecoveryTest,
                         ::testing::Values(StorageModel::kRow,
                                           StorageModel::kColumn,
                                           StorageModel::kRcv,
                                           StorageModel::kHybrid),
                         [](const auto& info) {
                           return std::string(StorageModelName(info.param));
                         });

// ---------------------------------------------------------------------------
// Checkpoint semantics and observability
// ---------------------------------------------------------------------------

TEST(WalCheckpointTest, FlushAllTruncatesTheLogAndBoundsRecovery) {
  DurablePair pair("ckpt");
  Pager pager(pair.Config());
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < 6 * kSlots; ++s) pager.Write(f, s, ProbeValue(s));
  pager.SyncWal();
  long before = FileSizeBytes(pair.wal);
  ASSERT_GT(before, 0);
  size_t flushed = pager.FlushAll();
  EXPECT_GT(flushed, 0u);
  long after = FileSizeBytes(pair.wal);
  EXPECT_LT(after, before) << "checkpoint must truncate the redo";
  EXPECT_EQ(pager.FlushAll(), 0u);  // all clean: nothing to flush

  // The log grows again with new redo and the next checkpoint re-truncates.
  for (uint64_t s = 0; s < 2 * kSlots; ++s) {
    pager.Write(f, s, Value::Int(static_cast<int64_t>(s)));
  }
  pager.SyncWal();
  EXPECT_GT(FileSizeBytes(pair.wal), after);
  (void)pager.FlushAll();
  EXPECT_LE(FileSizeBytes(pair.wal), before);
  pager.CrashForTesting();

  Pager reopened(pair.Config());
  for (uint64_t s = 0; s < 2 * kSlots; ++s) {
    ASSERT_EQ(reopened.Read(f, s), Value::Int(static_cast<int64_t>(s)));
  }
  for (uint64_t s = 2 * kSlots; s < 6 * kSlots; ++s) {
    ASSERT_EQ(reopened.Read(f, s), ProbeValue(s));
  }
}

TEST(WalCheckpointTest, AutoCheckpointKeepsTheLogBounded) {
  DurablePair pair("auto_ckpt");
  PagerConfig config = pair.Config(/*cap=*/8);
  config.wal_auto_checkpoint_bytes = 64 * 1024;
  Pager pager(config);
  FileId f = pager.CreateFile();
  for (uint64_t s = 0; s < 60 * kSlots; ++s) {
    pager.Write(f, s, ProbeValue(s));
  }
  // Without auto-checkpointing this workload logs several hundred KiB of
  // full-page images; the cap forces periodic truncation. The log may
  // overshoot by one burst plus the metadata snapshot, never unboundedly.
  EXPECT_GT(pager.stats().wal_records, 0u);
  uint64_t live = pager.wal()->bytes_since_checkpoint();
  EXPECT_LT(live, 3 * config.wal_auto_checkpoint_bytes);
  // Checkpoint-storm regression: the snapshot records themselves must not
  // count as pending redo, or a database whose snapshot outgrows the
  // threshold would re-checkpoint on every subsequent append.
  (void)pager.FlushAll();
  EXPECT_EQ(pager.wal()->bytes_since_checkpoint(), 0u);
  pager.CrashForTesting();
  Pager recovered(config);
  for (uint64_t s = 0; s < 60 * kSlots; ++s) {
    ASSERT_EQ(recovered.Read(f, s), ProbeValue(s)) << "slot " << s;
  }
}

TEST(SpillStatsTest, DeadBytesObservesRelocationAndFreedSlots) {
  // No WAL needed: dead-byte accounting is a plain spill property.
  PagerConfig config;
  config.max_resident_pages = 1;
  Pager pager(config);
  FileId f = pager.CreateFile();
  pager.Write(f, 0, Value::Text("small"));
  pager.Write(f, kSlots, Value::Int(1));  // evicts page 0: small record
  EXPECT_EQ(pager.stats().spill_dead_bytes, 0u);
  // Regrow page 0's record past its reserved capacity: relocation abandons
  // the old bytes, which become dead.
  pager.Write(f, 1, Value::Text(std::string(512, 'y')));
  pager.Write(f, kSlots, Value::Int(2));  // evicts the now-bigger page 0
  uint64_t after_relocation = pager.stats().spill_dead_bytes;
  EXPECT_GT(after_relocation, 0u);
  // Truncating away spilled pages parks their capacity on the free list —
  // still dead until recycled.
  pager.Truncate(f, 1);
  uint64_t after_truncate = pager.stats().spill_dead_bytes;
  EXPECT_GT(after_truncate, after_relocation);
  // Recycling a freed slot brings its reserve back to life.
  FileId g = pager.CreateFile();
  pager.Write(g, 0, Value::Int(7));
  pager.Write(g, kSlots, Value::Int(8));  // evicts g's page 0 into a free slot
  EXPECT_LT(pager.stats().spill_dead_bytes, after_truncate);
}

TEST(DurabilityTest, DurablePairSurvivesShutdownScratchSpillDoesNot) {
  DurablePair pair("artifacts");
  {
    Pager pager(pair.Config());
    FileId f = pager.CreateFile();
    pager.Write(f, 0, Value::Int(1));
  }
  EXPECT_GT(FileSizeBytes(pair.wal), 0) << "WAL must survive a clean close";
  EXPECT_GE(FileSizeBytes(pair.spill), 0) << "spill must survive";
  // (Scratch named spills are covered by eviction_test's
  // NamedSpillFileIsRemovedWithThePager.)
}

}  // namespace
}  // namespace dataspread
