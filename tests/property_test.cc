#include <gtest/gtest.h>

#include <random>
#include <thread>

#include "core/dataspread.h"
#include "io/csv.h"
#include "storage/page_cursor.h"

namespace dataspread {
namespace {

// ---------------------------------------------------------------------------
// Invariant 1: dirty-set recalculation ≡ full recomputation.
// ---------------------------------------------------------------------------

class RecalcEquivalenceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(RecalcEquivalenceTest, DirtyRecalcMatchesFullRecompute) {
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  Sheet* s = ds.AddSheet("S").ValueOrDie();
  std::mt19937 rng(GetParam());

  constexpr int64_t kRows = 24;
  // Literal column A, formula columns B..D referencing earlier columns.
  for (int64_t r = 0; r < kRows; ++r) {
    ASSERT_TRUE(
        s->SetValue(r, 0, Value::Int(static_cast<int64_t>(rng() % 50))).ok());
  }
  for (int64_t r = 0; r < kRows; ++r) {
    std::string row = std::to_string(r + 1);
    ASSERT_TRUE(s->SetFormula(r, 1, "=A" + row + "*2").ok());
    ASSERT_TRUE(s->SetFormula(r, 2, "=B" + row + "+A" +
                                        std::to_string(rng() % kRows + 1)).ok());
    if (r % 3 == 0) {
      ASSERT_TRUE(s->SetFormula(r, 3, "=SUM(A1:B" + row + ")").ok());
    }
  }
  ASSERT_TRUE(ds.RecalcNow().ok());

  // Random edit bursts, each followed by incremental recalculation.
  for (int burst = 0; burst < 20; ++burst) {
    int edits = 1 + static_cast<int>(rng() % 4);
    for (int e = 0; e < edits; ++e) {
      int64_t r = static_cast<int64_t>(rng() % kRows);
      ASSERT_TRUE(
          s->SetValue(r, 0, Value::Int(static_cast<int64_t>(rng() % 100))).ok());
    }
    ASSERT_TRUE(ds.RecalcNow().ok());
  }

  // Snapshot, then force a from-scratch recomputation and compare.
  std::vector<std::pair<std::pair<int64_t, int64_t>, std::string>> snapshot;
  s->VisitRange(0, 0, kRows, 4, [&](int64_t r, int64_t c, const Cell& cell) {
    snapshot.push_back({{r, c}, cell.value.ToDisplayString()});
  });
  ASSERT_TRUE(ds.engine().RecalcAll().ok());
  for (const auto& [pos, display] : snapshot) {
    EXPECT_EQ(s->GetValue(pos.first, pos.second).ToDisplayString(), display)
        << "cell " << FormatCell(pos.first, pos.second);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RecalcEquivalenceTest,
                         ::testing::Values(1u, 17u, 23u, 404u));

// ---------------------------------------------------------------------------
// Invariant 2: query results agree across all four storage models.
// ---------------------------------------------------------------------------

class StorageEquivalenceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(StorageEquivalenceTest, QueriesAgreeAcrossModels) {
  std::mt19937 rng(GetParam());
  std::vector<Database> dbs(4);
  StorageModel models[] = {StorageModel::kRow, StorageModel::kColumn,
                           StorageModel::kRcv, StorageModel::kHybrid};
  Schema schema({ColumnDef{"id", DataType::kInt, true},
                 ColumnDef{"grp", DataType::kText, false},
                 ColumnDef{"x", DataType::kReal, false}});
  std::vector<Table*> tables;
  for (size_t i = 0; i < 4; ++i) {
    tables.push_back(dbs[i].CreateTable("t", schema, models[i]).ValueOrDie());
  }
  // Same random content everywhere (including NULLs), plus schema churn.
  for (int64_t id = 0; id < 200; ++id) {
    Row row{Value::Int(id), Value::Text("g" + std::to_string(rng() % 5)),
            (rng() % 7 == 0) ? Value::Null()
                             : Value::Real(static_cast<double>(rng() % 1000))};
    for (Table* t : tables) ASSERT_TRUE(t->AppendRow(row).ok());
  }
  for (Database& db : dbs) {
    ASSERT_TRUE(db.Execute("ALTER TABLE t ADD COLUMN flag INT DEFAULT 1").ok());
    ASSERT_TRUE(db.Execute("UPDATE t SET flag = 0 WHERE id % 3 = 0").ok());
    ASSERT_TRUE(db.Execute("DELETE FROM t WHERE id % 17 = 5").ok());
  }
  const char* queries[] = {
      "SELECT * FROM t ORDER BY id",
      "SELECT grp, COUNT(*), SUM(x), AVG(x) FROM t GROUP BY grp ORDER BY grp",
      "SELECT id FROM t WHERE x IS NULL ORDER BY id",
      "SELECT COUNT(*) FROM t WHERE flag = 0",
      "SELECT grp, MAX(x) FROM t WHERE id BETWEEN 20 AND 150 GROUP BY grp "
      "HAVING COUNT(*) > 3 ORDER BY grp",
  };
  for (const char* q : queries) {
    auto reference = dbs[0].Execute(q);
    ASSERT_TRUE(reference.ok()) << q;
    for (size_t i = 1; i < 4; ++i) {
      auto rs = dbs[i].Execute(q);
      ASSERT_TRUE(rs.ok()) << q;
      ASSERT_EQ(rs.value().num_rows(), reference.value().num_rows())
          << q << " model " << StorageModelName(models[i]);
      for (size_t r = 0; r < rs.value().rows.size(); ++r) {
        EXPECT_TRUE(RowEq{}(rs.value().rows[r], reference.value().rows[r]))
            << q << " row " << r << " model " << StorageModelName(models[i]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, StorageEquivalenceTest,
                         ::testing::Values(3u, 31u, 314u));

// ---------------------------------------------------------------------------
// Invariant 3: two-way sync converges — the bound region always equals the
// table after the compute engine drains.
// ---------------------------------------------------------------------------

class SyncConvergenceTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SyncConvergenceTest, RandomInterleavedEditsConverge) {
  std::mt19937 rng(GetParam());
  DataSpread ds;
  Sheet* s = ds.AddSheet("S").ValueOrDie();
  ASSERT_TRUE(ds.Sql("CREATE TABLE t (id INT PRIMARY KEY, v INT)").ok());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(ds.Sql("INSERT INTO t VALUES (" + std::to_string(i) + ", 0)")
                    .ok());
  }
  ASSERT_TRUE(ds.ImportTable("S", "A1", "t").ok());

  for (int step = 0; step < 60; ++step) {
    int action = static_cast<int>(rng() % 4);
    Table* table = ds.db().catalog().GetTable("t").ValueOrDie();
    if (action == 0) {
      // Front-end edit of a bound value cell.
      size_t n = table->num_rows();
      if (n > 0) {
        int64_t row = 1 + static_cast<int64_t>(rng() % n);
        (void)ds.SetCellAt(s, row, 1, std::to_string(rng() % 100));
      }
    } else if (action == 1) {
      (void)ds.Sql("UPDATE t SET v = " + std::to_string(rng() % 100) +
                   " WHERE id = " + std::to_string(rng() % 40));
    } else if (action == 2) {
      (void)ds.Sql("INSERT INTO t VALUES (" + std::to_string(20 + step) +
                   ", " + std::to_string(rng() % 100) + ")");
    } else {
      (void)ds.Sql("DELETE FROM t WHERE id = " + std::to_string(rng() % 40));
    }
  }
  ds.Pump();

  // The materialized window must mirror the table exactly.
  Table* table = ds.db().catalog().GetTable("t").ValueOrDie();
  auto* binding = ds.interface_manager().FindBindingAt(s, 0, 0);
  ASSERT_NE(binding, nullptr);
  std::vector<Row> window =
      table->GetWindow(binding->window_start(), binding->window_count());
  for (size_t i = 0; i < window.size(); ++i) {
    int64_t sheet_row = binding->data_row() +
                        static_cast<int64_t>(binding->window_start() + i);
    for (size_t c = 0; c < window[i].size(); ++c) {
      EXPECT_EQ(s->GetValue(sheet_row, static_cast<int64_t>(c)), window[i][c])
          << "row " << sheet_row << " col " << c;
    }
  }
  // No stale cells below the window.
  int64_t first_stale = binding->data_row() +
                        static_cast<int64_t>(table->num_rows());
  EXPECT_TRUE(s->GetValue(first_stale, 0).is_null());
  EXPECT_TRUE(s->GetValue(first_stale, 1).is_null());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SyncConvergenceTest,
                         ::testing::Values(5u, 55u, 555u, 5555u));

// ---------------------------------------------------------------------------
// Invariant 4: pane materialization matches table content wherever the user
// pans, and sheet memory stays bounded by the window.
// ---------------------------------------------------------------------------

class PanePropertyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(PanePropertyTest, RandomPansStayConsistentAndBounded) {
  std::mt19937 rng(GetParam());
  DataSpreadOptions opts;
  opts.binding_window = 48;
  opts.viewport_rows = 20;
  opts.viewport_cols = 4;
  opts.prefetch_margin = 8;
  DataSpread ds(opts);
  Sheet* s = ds.AddSheet("S").ValueOrDie();
  Table* table =
      ds.db()
          .CreateTable("t", Schema({ColumnDef{"id", DataType::kInt, true},
                                    ColumnDef{"v", DataType::kText, false}}))
          .ValueOrDie();
  for (int64_t i = 0; i < 5000; ++i) {
    ASSERT_TRUE(
        table->AppendRow({Value::Int(i), Value::Text("v" + std::to_string(i))})
            .ok());
  }
  ASSERT_TRUE(ds.ImportTable("S", "A1", "t").ok());

  for (int pan = 0; pan < 25; ++pan) {
    int64_t top = static_cast<int64_t>(rng() % 5000);
    ASSERT_TRUE(ds.ScrollTo("S", top, 0).ok());
    // Every visible data row shows exactly the table tuple at its position.
    for (int64_t r = top; r < top + opts.viewport_rows; ++r) {
      int64_t position = r - 1;  // header at row 0
      if (position < 0 || position >= 5000) continue;
      EXPECT_EQ(s->GetValue(r, 0), Value::Int(position)) << "pan " << top;
      EXPECT_EQ(s->GetValue(r, 1), Value::Text("v" + std::to_string(position)));
    }
    // Memory bounded by the window, never the table.
    EXPECT_LT(s->cell_count(), 500u);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, PanePropertyTest,
                         ::testing::Values(9u, 99u, 999u));

// ---------------------------------------------------------------------------
// Invariant 5: CSV round trips preserve values and dynamic types.
// ---------------------------------------------------------------------------

class CsvRoundTripTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CsvRoundTripTest, RandomRowsSurviveRoundTrip) {
  std::mt19937 rng(GetParam());
  std::vector<Row> rows;
  for (int r = 0; r < 40; ++r) {
    Row row;
    for (int c = 0; c < 5; ++c) {
      switch (rng() % 6) {
        case 0:
          row.push_back(Value::Int(static_cast<int64_t>(rng()) - (1u << 30)));
          break;
        case 1:
          row.push_back(Value::Real(static_cast<double>(rng()) / 7.0));
          break;
        case 2:
          row.push_back(Value::Bool(rng() % 2 == 0));
          break;
        case 3:
          row.push_back(Value::Null());
          break;
        case 4:
          // Adversarial text: delimiters, quotes, numeric look-alikes.
          row.push_back(Value::Text(
              std::vector<std::string>{"a,b", "say \"hi\"", "42", "true",
                                       "line\nbreak", "plain"}[rng() % 6]));
          break;
        default:
          row.push_back(Value::Text("w" + std::to_string(rng() % 1000)));
      }
    }
    rows.push_back(std::move(row));
  }
  auto back = ParseCsv(WriteCsv(rows)).value();
  ASSERT_EQ(back.size(), rows.size());
  for (size_t r = 0; r < rows.size(); ++r) {
    ASSERT_EQ(back[r].size(), rows[r].size()) << "row " << r;
    for (size_t c = 0; c < rows[r].size(); ++c) {
      // Values are preserved under the cross-type numeric equality the
      // system uses everywhere (an integral REAL like 2.0 displays as "2"
      // and legitimately re-types as INT).
      EXPECT_EQ(back[r][c], rows[r][c]) << "row " << r << " col " << c;
      EXPECT_EQ(back[r][c].ToDisplayString(), rows[r][c].ToDisplayString())
          << "row " << r << " col " << c;
      if (!rows[r][c].is_numeric()) {
        EXPECT_EQ(back[r][c].type(), rows[r][c].type())
            << "row " << r << " col " << c;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CsvRoundTripTest,
                         ::testing::Values(2u, 22u, 222u, 2222u));

// ---------------------------------------------------------------------------
// Invariant 6: the buffer-pool size is invisible. The same workload run under
// an unbounded pool, a comfortable cap, and a pathologically tiny cap must
// leave byte-identical visible contents — eviction may only move pages, never
// change what callers read.
// ---------------------------------------------------------------------------

class EvictionTransparencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(EvictionTransparencyTest, PoolSizeNeverChangesVisibleContents) {
  using storage::FileId;
  using storage::Pager;
  using storage::PagerConfig;
  constexpr uint64_t kSlotsPerPage = Pager::kSlotsPerPage;
  constexpr size_t kPoolSizes[] = {0, 64, 4};  // unbounded, roomy, tiny
  constexpr int kFiles = 2;
  constexpr uint64_t kMaxSlots = 10 * kSlotsPerPage;

  // One deterministic op tape, replayed against every pool size.
  struct Op {
    int kind;  // 0 write, 1 truncate, 2 flush
    int file;
    uint64_t slot;
    Value value;
  };
  std::vector<Op> tape;
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 1500; ++i) {
    Op op;
    uint32_t k = rng() % 16;
    op.kind = k < 12 ? 0 : (k < 14 ? 1 : 2);
    op.file = static_cast<int>(rng() % kFiles);
    op.slot = rng() % kMaxSlots;
    switch (rng() % 4) {
      case 0:
        op.value = Value::Int(static_cast<int64_t>(rng()));
        break;
      case 1:
        op.value = Value::Text("s" + std::to_string(rng() % 512));
        break;
      case 2:
        op.value = Value::Real(static_cast<double>(rng()) / 17.0);
        break;
      default:
        op.value = Value::Null();
    }
    tape.push_back(std::move(op));
  }

  // Visible contents of every file after replaying the tape on `cap`.
  auto replay = [&](size_t cap) {
    PagerConfig config;
    config.max_resident_pages = cap;
    Pager pager(config);
    std::vector<FileId> files;
    for (int i = 0; i < kFiles; ++i) files.push_back(pager.CreateFile());
    for (const Op& op : tape) {
      FileId f = files[op.file];
      if (op.kind == 0) {
        pager.Write(f, op.slot, op.value);
      } else if (op.kind == 1) {
        uint64_t size = pager.FileSize(f);
        if (size > 0) pager.Truncate(f, op.slot % size);
      } else {
        (void)pager.FlushAll();
      }
      if (cap > 0) {
        EXPECT_LE(pager.resident_pages(), cap);
      }
    }
    std::vector<std::vector<Value>> contents(kFiles);
    for (int i = 0; i < kFiles; ++i) {
      uint64_t capacity = pager.FilePages(files[i]) * kSlotsPerPage;
      for (uint64_t s = 0; s < capacity; ++s) {
        contents[i].push_back(pager.Read(files[i], s));
      }
    }
    return contents;
  };

  auto reference = replay(kPoolSizes[0]);
  for (size_t p = 1; p < 3; ++p) {
    auto bounded = replay(kPoolSizes[p]);
    for (int i = 0; i < kFiles; ++i) {
      ASSERT_EQ(bounded[i].size(), reference[i].size())
          << "pool " << kPoolSizes[p] << " file " << i;
      for (size_t s = 0; s < reference[i].size(); ++s) {
        ASSERT_EQ(bounded[i][s], reference[i][s])
            << "pool " << kPoolSizes[p] << " file " << i << " slot " << s;
        ASSERT_EQ(bounded[i][s].type(), reference[i][s].type())
            << "pool " << kPoolSizes[p] << " file " << i << " slot " << s;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EvictionTransparencyTest,
                         ::testing::Values(7u, 77u, 7777u));

// ---------------------------------------------------------------------------
// Invariant 7: the access path is invisible. Replaying one op tape through
// the slot-granular APIs and through PageCursors must leave byte-identical
// visible contents — for every pool size and both eviction policies (clock
// only vs scan-resistant + readahead). The cursor fast path and the scan
// ring may only change *where* pages live, never what callers read.
// ---------------------------------------------------------------------------

class CursorTransparencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(CursorTransparencyTest, CursorAndSlotPathsConverge) {
  using storage::FileId;
  using storage::PageCursor;
  using storage::Pager;
  using storage::PagerConfig;
  constexpr uint64_t kSlotsPerPage = Pager::kSlotsPerPage;
  constexpr int kFiles = 2;
  constexpr uint64_t kMaxSlots = 9 * kSlotsPerPage;

  struct Op {
    int kind;  // 0 write, 1 take, 2 flush, 3 bulk run of writes
    int file;
    uint64_t slot;
    Value value;
  };
  std::vector<Op> tape;
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 1200; ++i) {
    Op op;
    uint32_t k = rng() % 16;
    op.kind = k < 10 ? 0 : (k < 12 ? 1 : (k < 14 ? 3 : 2));
    op.file = static_cast<int>(rng() % kFiles);
    op.slot = rng() % kMaxSlots;
    op.value = (rng() % 3 == 0)
                   ? Value::Text("s" + std::to_string(rng() % 512))
                   : Value::Int(static_cast<int64_t>(rng()));
    tape.push_back(std::move(op));
  }

  // `use_cursor` routes every op through long-lived per-file cursors;
  // otherwise the slot APIs serve them. Takes on not-yet-addressable slots
  // are skipped identically in both modes.
  auto replay = [&](size_t cap, bool scan_resistant, bool use_cursor) {
    PagerConfig config;
    config.max_resident_pages = cap;
    config.scan_resistant = scan_resistant;
    config.readahead = scan_resistant;
    Pager pager(config);
    std::vector<FileId> files;
    for (int i = 0; i < kFiles; ++i) files.push_back(pager.CreateFile());
    {
      std::vector<PageCursor> cursors;
      for (int i = 0; i < kFiles; ++i) cursors.emplace_back(pager, files[i]);
      for (const Op& op : tape) {
        FileId f = files[op.file];
        PageCursor& cur = cursors[static_cast<size_t>(op.file)];
        switch (op.kind) {
          case 0:
            if (use_cursor) {
              cur.Write(op.slot, op.value);
            } else {
              pager.Write(f, op.slot, op.value);
            }
            break;
          case 1: {
            uint64_t capacity = pager.FilePages(f) * kSlotsPerPage;
            if (op.slot >= capacity) break;
            if (use_cursor) {
              (void)cur.Take(op.slot);
            } else {
              (void)pager.Take(f, op.slot);
            }
            break;
          }
          case 3: {  // short sequential burst: the scan-classified shape
            uint64_t start = op.slot % (kMaxSlots / 2);
            for (uint64_t s = 0; s < kSlotsPerPage + 9; ++s) {
              if (use_cursor) {
                cur.Write(start + s, Value::Int(static_cast<int64_t>(s)));
              } else {
                pager.Write(f, start + s, Value::Int(static_cast<int64_t>(s)));
              }
            }
            break;
          }
          default:
            (void)pager.FlushAll();
        }
        if (cap > 0) {
          EXPECT_LE(pager.resident_pages(), cap);
        }
      }
    }  // cursors released
    std::vector<std::vector<Value>> contents(kFiles);
    for (int i = 0; i < kFiles; ++i) {
      uint64_t capacity = pager.FilePages(files[i]) * kSlotsPerPage;
      for (uint64_t s = 0; s < capacity; ++s) {
        contents[i].push_back(pager.Read(files[i], s));
      }
    }
    return contents;
  };

  auto reference = replay(/*cap=*/0, /*scan_resistant=*/false,
                          /*use_cursor=*/false);
  for (size_t cap : {size_t{0}, size_t{48}, size_t{3}}) {
    for (bool scan_resistant : {false, true}) {
      for (bool use_cursor : {false, true}) {
        auto got = replay(cap, scan_resistant, use_cursor);
        for (int i = 0; i < kFiles; ++i) {
          ASSERT_EQ(got[i].size(), reference[i].size())
              << "cap " << cap << " scanres " << scan_resistant << " cursor "
              << use_cursor << " file " << i;
          for (size_t s = 0; s < reference[i].size(); ++s) {
            ASSERT_EQ(got[i][s], reference[i][s])
                << "cap " << cap << " scanres " << scan_resistant
                << " cursor " << use_cursor << " file " << i << " slot " << s;
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CursorTransparencyTest,
                         ::testing::Values(5u, 55u, 5555u));

// ---------------------------------------------------------------------------
// Invariant 8: durability is invisible. One op tape (DML with positional
// inserts/deletes, schema churn) replayed on a scratch database and on a
// durable database — then *closed and reopened* — must leave every storage
// model byte- and schema-identical, across pool sizes. The close/reopen
// cycle may only move state through disk, never change what callers read.
// ---------------------------------------------------------------------------

class ReopenTransparencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ReopenTransparencyTest, CloseReopenNeverChangesVisibleState) {
  constexpr StorageModel kModels[] = {StorageModel::kRow,
                                      StorageModel::kColumn,
                                      StorageModel::kRcv,
                                      StorageModel::kHybrid};
  struct Op {
    int kind;  // 0 append, 1 insert-at, 2 delete-at, 3 update, 4 add col,
               // 5 drop col, 6 checkpoint
    uint32_t a, b, c;
  };
  std::vector<Op> tape;
  std::mt19937 rng(GetParam());
  for (int i = 0; i < 400; ++i) {
    uint32_t k = rng() % 32;
    int kind = k < 14 ? 0 : (k < 19 ? 1 : (k < 24 ? 2 : (k < 29 ? 3
               : (k < 30 ? 4 : (k < 31 ? 5 : 6)))));
    tape.push_back(Op{kind, rng(), rng(), rng()});
  }

  auto drive = [&](Database& db) {
    int col_counter = 0;
    for (StorageModel model : kModels) {
      Table* t =
          db.catalog()
              .CreateTable(std::string("t_") + StorageModelName(model),
                           Schema({ColumnDef{"id", DataType::kInt, false},
                                   ColumnDef{"s", DataType::kText, false}}),
                           model)
              .ValueOrDie();
      for (const Op& op : tape) {
        size_t n = t->num_rows();
        size_t cols = t->schema().num_columns();
        Row row;
        for (size_t c = 0; c < cols; ++c) {
          row.push_back(t->schema().column(c).type == DataType::kText
                            ? Value::Text("s" + std::to_string(op.b % 77))
                            : Value::Int(static_cast<int64_t>(op.a % 500)));
        }
        switch (op.kind) {
          case 0:
            ASSERT_TRUE(t->AppendRow(std::move(row)).ok());
            break;
          case 1:
            ASSERT_TRUE(t->InsertRowAt(op.c % (n + 1), std::move(row)).ok());
            break;
          case 2:
            if (n > 0) ASSERT_TRUE(t->DeleteRowAt(op.c % n).ok());
            break;
          case 3:
            if (n > 0) {
              size_t col = op.a % cols;
              Value v = (op.b % 6 == 0)
                            ? Value::Null()
                            : (t->schema().column(col).type == DataType::kText
                                   ? Value::Text("u" + std::to_string(op.b))
                                   : Value::Int(static_cast<int64_t>(op.b)));
              ASSERT_TRUE(t->UpdateAt(op.c % n, col, std::move(v)).ok());
            }
            break;
          case 4:
            ASSERT_TRUE(t->AddColumn(ColumnDef{"c" + std::to_string(
                                                   col_counter++),
                                               DataType::kInt, false},
                                     Value::Int(-1))
                            .ok());
            break;
          case 5:
            if (cols > 1) {
              ASSERT_TRUE(
                  t->DropColumn(t->schema().column(cols - 1).name).ok());
            }
            break;
          default:
            (void)db.Checkpoint();
        }
      }
    }
  };
  auto capture = [&](Database& db) {
    std::vector<std::vector<Row>> out;
    std::vector<std::string> schemas;
    for (StorageModel model : kModels) {
      Table* t = db.catalog()
                     .GetTable(std::string("t_") + StorageModelName(model))
                     .ValueOrDie();
      schemas.push_back(t->schema().ToString());
      std::vector<Row> rows;
      for (size_t r = 0; r < t->num_rows(); ++r) {
        rows.push_back(t->GetRowAt(r).ValueOrDie());
      }
      out.push_back(std::move(rows));
    }
    return std::make_pair(schemas, out);
  };

  Database scratch;
  drive(scratch);
  auto reference = capture(scratch);

  for (size_t cap : {size_t{0}, size_t{64}, size_t{4}}) {
    std::string base = ::testing::TempDir() + "ds_prop_reopen_" +
                       std::to_string(GetParam()) + "_" + std::to_string(cap);
    std::remove((base + ".wal").c_str());
    std::remove((base + ".pages").c_str());
    DatabaseOptions options;
    options.pager.max_resident_pages = cap;
    {
      auto db = Database::Open(base, options);
      drive(*db);
      auto before = capture(*db);
      ASSERT_EQ(before.first, reference.first) << "pool " << cap;
    }  // clean close
    auto db = Database::Open(base, options);
    auto got = capture(*db);
    ASSERT_EQ(got.first, reference.first) << "pool " << cap;
    for (size_t m = 0; m < got.second.size(); ++m) {
      ASSERT_EQ(got.second[m].size(), reference.second[m].size())
          << "pool " << cap << " model " << m;
      for (size_t r = 0; r < got.second[m].size(); ++r) {
        for (size_t c = 0; c < got.second[m][r].size(); ++c) {
          ASSERT_EQ(got.second[m][r][c], reference.second[m][r][c])
              << "pool " << cap << " model " << m << " row " << r << " col "
              << c;
          ASSERT_EQ(got.second[m][r][c].type(),
                    reference.second[m][r][c].type())
              << "pool " << cap << " model " << m << " row " << r << " col "
              << c;
        }
      }
    }
    std::remove((base + ".wal").c_str());
    std::remove((base + ".pages").c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReopenTransparencyTest,
                         ::testing::Values(13u, 137u, 13717u));

// ---------------------------------------------------------------------------
// Invariant 9: the execution mode is invisible. Every query run through the
// row-at-a-time Volcano pipeline and through the vectorized batch pipeline —
// at degenerate (1), misaligned (3), and larger-than-input (512) batch sizes
// — must produce byte-identical ResultSets, for every storage model and pool
// size. The query tape touches every operator: table scan (with and without
// window pushdown), rows scan, filter, project, hash/nested-loop/natural/
// left joins, aggregation with HAVING, sort, distinct, limit/offset.
// ---------------------------------------------------------------------------

class BatchTransparencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(BatchTransparencyTest, RowAndBatchPipelinesProduceIdenticalResults) {
  constexpr StorageModel kModels[] = {StorageModel::kRow,
                                      StorageModel::kColumn,
                                      StorageModel::kRcv,
                                      StorageModel::kHybrid};
  constexpr size_t kPools[] = {0, 64, 4};  // unbounded, roomy, tiny
  std::mt19937 rng(GetParam());

  // One random dataset, loaded identically into every configuration.
  Schema t_schema({ColumnDef{"id", DataType::kInt, true},
                   ColumnDef{"grp", DataType::kText, false},
                   ColumnDef{"x", DataType::kReal, false}});
  Schema u_schema({ColumnDef{"grp", DataType::kText, false},
                   ColumnDef{"tag", DataType::kInt, false}});
  std::vector<Row> t_rows, u_rows;
  for (int64_t id = 0; id < 150; ++id) {
    t_rows.push_back({Value::Int(id),
                      Value::Text("g" + std::to_string(rng() % 6)),
                      (rng() % 7 == 0)
                          ? Value::Null()
                          : Value::Real(static_cast<double>(rng() % 1000))});
  }
  for (int64_t tag = 0; tag < 20; ++tag) {
    u_rows.push_back({(rng() % 5 == 0)
                          ? Value::Null()  // NULL keys never join
                          : Value::Text("g" + std::to_string(rng() % 8)),
                      Value::Int(tag)});
  }

  const char* queries[] = {
      "SELECT * FROM t ORDER BY id",
      "SELECT id, x * 2 + 1 FROM t WHERE x IS NOT NULL AND id % 3 <> 0 "
      "ORDER BY id",
      "SELECT grp, COUNT(*), SUM(x), AVG(x), MIN(x), MAX(x) FROM t "
      "GROUP BY grp HAVING COUNT(*) > 2 ORDER BY grp",
      "SELECT COUNT(*), SUM(x) FROM t",
      "SELECT t.id, u.tag FROM t JOIN u ON t.grp = u.grp "
      "ORDER BY t.id, u.tag",
      "SELECT t.id, u.tag FROM t LEFT JOIN u ON t.grp = u.grp "
      "ORDER BY t.id, u.tag",
      "SELECT t.id, u.tag FROM t JOIN u ON t.x > u.tag * 40 "
      "ORDER BY t.id, u.tag",
      "SELECT * FROM t NATURAL JOIN u ORDER BY id, tag",
      "SELECT DISTINCT grp FROM t ORDER BY grp",
      "SELECT id FROM t LIMIT 7 OFFSET 3",                    // pushdown
      "SELECT id FROM t WHERE id >= 0 ORDER BY id LIMIT 7 OFFSET 3",
      "SELECT id FROM t LIMIT 5 OFFSET 148",                  // clipped window
  };

  for (size_t cap : kPools) {
    for (StorageModel model : kModels) {
      DatabaseOptions options;
      options.pager.max_resident_pages = cap;
      Database db(options);
      Table* t = db.CreateTable("t", t_schema, model).ValueOrDie();
      Table* u = db.CreateTable("u", u_schema, model).ValueOrDie();
      for (const Row& r : t_rows) ASSERT_TRUE(t->AppendRow(r).ok());
      for (const Row& r : u_rows) ASSERT_TRUE(u->AppendRow(r).ok());

      for (const char* q : queries) {
        db.set_exec_options(ExecOptions{0, /*row_at_a_time=*/true});
        auto reference = db.Execute(q);
        ASSERT_TRUE(reference.ok()) << q;
        for (size_t batch : {size_t{1}, size_t{3}, size_t{512}}) {
          db.set_exec_options(ExecOptions{batch, false});
          auto got = db.Execute(q);
          ASSERT_TRUE(got.ok()) << q << " batch " << batch;
          ASSERT_EQ(got.value().columns, reference.value().columns) << q;
          ASSERT_EQ(got.value().num_rows(), reference.value().num_rows())
              << q << " pool " << cap << " model " << StorageModelName(model)
              << " batch " << batch;
          for (size_t r = 0; r < reference.value().rows.size(); ++r) {
            const Row& want = reference.value().rows[r];
            const Row& have = got.value().rows[r];
            ASSERT_EQ(have.size(), want.size()) << q << " row " << r;
            for (size_t c = 0; c < want.size(); ++c) {
              ASSERT_EQ(have[c], want[c])
                  << q << " pool " << cap << " model "
                  << StorageModelName(model) << " batch " << batch << " row "
                  << r << " col " << c;
              ASSERT_EQ(have[c].type(), want[c].type())
                  << q << " row " << r << " col " << c;
            }
          }
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BatchTransparencyTest,
                         ::testing::Values(11u, 211u, 3111u));

// ---------------------------------------------------------------------------
// Invariant 10: the morsel-parallel leaf is invisible (DESIGN.md §6b).
// Every eligible query run serially and at 1/2/4 worker threads must agree
// for every storage model and pool size: byte-identical for aggregates,
// ORDER BY, and positional windows (group first-seen order, MIN/MAX tie
// winners, and row order all reproduce), set-identical for unordered scans
// (the documented contract — the implementation happens to deliver morsel-
// order determinism, which the byte-level cases pin). REAL inputs are
// multiples of 0.25 so parallel SUM/AVG merges are fp-exact; ineligible
// shapes (joins) must fall back to the serial plan unchanged.
// ---------------------------------------------------------------------------

class ParallelTransparencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ParallelTransparencyTest, SerialAndParallelPipelinesAgree) {
  constexpr StorageModel kModels[] = {StorageModel::kRow,
                                      StorageModel::kColumn,
                                      StorageModel::kRcv,
                                      StorageModel::kHybrid};
  constexpr size_t kPools[] = {0, 64, 4};  // unbounded, roomy, tiny
  std::mt19937 rng(GetParam());

  Schema t_schema({ColumnDef{"id", DataType::kInt, true},
                   ColumnDef{"grp", DataType::kText, false},
                   ColumnDef{"x", DataType::kReal, false}});
  Schema u_schema({ColumnDef{"grp", DataType::kText, false},
                   ColumnDef{"tag", DataType::kInt, false}});
  std::vector<Row> t_rows, u_rows;
  for (int64_t id = 0; id < 150; ++id) {
    t_rows.push_back(
        {Value::Int(id), Value::Text("g" + std::to_string(rng() % 6)),
         (rng() % 7 == 0)
             ? Value::Null()
             : Value::Real(static_cast<double>(rng() % 4000) / 4.0)});
  }
  for (int64_t tag = 0; tag < 20; ++tag) {
    u_rows.push_back({(rng() % 5 == 0)
                          ? Value::Null()
                          : Value::Text("g" + std::to_string(rng() % 8)),
                      Value::Int(tag)});
  }

  struct Q {
    const char* sql;
    bool ordered;  // false: compare as multisets (unordered-scan contract)
  };
  const Q queries[] = {
      {"SELECT grp, COUNT(*), COUNT(x), SUM(x), AVG(x), MIN(x), MAX(x) "
       "FROM t GROUP BY grp",
       true},
      {"SELECT COUNT(*), SUM(x), MIN(x), MAX(id) FROM t WHERE id % 3 <> 0",
       true},
      {"SELECT grp, SUM(x) FROM t GROUP BY grp HAVING COUNT(*) > 2 "
       "ORDER BY grp",
       true},
      {"SELECT id, x * 2 FROM t WHERE x IS NOT NULL ORDER BY id", true},
      {"SELECT id FROM t ORDER BY x DESC, id LIMIT 9", true},
      {"SELECT DISTINCT grp FROM t ORDER BY grp", true},
      {"SELECT id FROM t LIMIT 7 OFFSET 3", true},  // positional window
      {"SELECT id FROM t WHERE id % 4 = 1 LIMIT 11", true},  // early stop
      {"SELECT * FROM t", false},
      {"SELECT id, grp FROM t WHERE id % 4 = 1", false},
      // Joins are not morsel-eligible: the fallback must stay transparent.
      {"SELECT t.id, u.tag FROM t JOIN u ON t.grp = u.grp "
       "ORDER BY t.id, u.tag",
       true},
  };

  // Type-tagged serialization: set-identity must not conflate 1 and 1.0.
  auto row_key = [](const Row& r) {
    std::string key;
    for (const Value& v : r) {
      key += std::to_string(static_cast<int>(v.type())) + ":" +
             v.ToDisplayString() + "|";
    }
    return key;
  };

  for (size_t cap : kPools) {
    for (StorageModel model : kModels) {
      DatabaseOptions options;
      options.pager.max_resident_pages = cap;
      Database db(options);
      Table* t = db.CreateTable("t", t_schema, model).ValueOrDie();
      Table* u = db.CreateTable("u", u_schema, model).ValueOrDie();
      for (const Row& r : t_rows) ASSERT_TRUE(t->AppendRow(r).ok());
      for (const Row& r : u_rows) ASSERT_TRUE(u->AppendRow(r).ok());

      for (const Q& q : queries) {
        db.set_exec_options(ExecOptions{16, false});
        auto reference = db.Execute(q.sql);
        ASSERT_TRUE(reference.ok()) << q.sql;
        for (size_t threads : {size_t{1}, size_t{2}, size_t{4}}) {
          db.set_exec_options(ExecOptions{16, false, threads, 32});
          auto got = db.Execute(q.sql);
          ASSERT_TRUE(got.ok()) << q.sql << " threads " << threads;
          ASSERT_EQ(got.value().columns, reference.value().columns) << q.sql;
          ASSERT_EQ(got.value().num_rows(), reference.value().num_rows())
              << q.sql << " pool " << cap << " model "
              << StorageModelName(model) << " threads " << threads;
          std::vector<Row> want = reference.value().rows;
          std::vector<Row> have = got.value().rows;
          if (!q.ordered) {
            auto by_key = [&](const Row& a, const Row& b) {
              return row_key(a) < row_key(b);
            };
            std::sort(want.begin(), want.end(), by_key);
            std::sort(have.begin(), have.end(), by_key);
          }
          for (size_t r = 0; r < want.size(); ++r) {
            ASSERT_EQ(have[r].size(), want[r].size()) << q.sql << " row " << r;
            for (size_t c = 0; c < want[r].size(); ++c) {
              ASSERT_EQ(have[r][c], want[r][c])
                  << q.sql << " pool " << cap << " model "
                  << StorageModelName(model) << " threads " << threads
                  << " row " << r << " col " << c;
              ASSERT_EQ(have[r][c].type(), want[r][c].type())
                  << q.sql << " row " << r << " col " << c;
            }
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Invariant 11: transaction boundaries are invisible (DESIGN.md §7). The
// same surviving DML lands in the same end state whether each statement
// autocommits, statements are grouped into BEGIN..COMMIT transactions, or
// everything rides one big committed transaction — across every storage
// model and pool size. And a rolled-back transaction is a perfect no-op:
// the end state is byte-identical (values *and* types, in display order) to
// a shadow database that never executed those operations at all.
// ---------------------------------------------------------------------------

class TxnTransparencyTest : public ::testing::TestWithParam<uint32_t> {};

TEST_P(TxnTransparencyTest, TransactionGroupingIsInvisibleAndRollbacksVanish) {
  constexpr StorageModel kModels[] = {StorageModel::kRow,
                                      StorageModel::kColumn,
                                      StorageModel::kRcv,
                                      StorageModel::kHybrid};
  struct Op {
    int kind;  // 0 append, 1 insert-at, 2 delete-at, 3 update
    uint32_t table, a, b, c;
  };
  // The tape is partitioned into consecutive groups; each group is either
  // kept (mode 0: autocommit per op, mode 1: one BEGIN..COMMIT) or doomed
  // (mode 2: BEGIN..ROLLBACK — the shadow never applies it).
  struct Group {
    std::vector<Op> ops;
    int mode;
  };
  std::vector<Group> groups;
  std::mt19937 rng(GetParam());
  {
    int remaining = 240;
    while (remaining > 0) {
      Group g;
      int len = 1 + static_cast<int>(rng() % 8);
      for (int i = 0; i < len && remaining > 0; ++i, --remaining) {
        uint32_t k = rng() % 10;
        int kind = k < 4 ? 0 : (k < 6 ? 1 : (k < 8 ? 2 : 3));
        g.ops.push_back(Op{kind, rng(), rng(), rng(), rng()});
      }
      uint32_t m = rng() % 4;
      g.mode = m < 2 ? 0 : (m < 3 ? 1 : 2);
      groups.push_back(std::move(g));
    }
  }

  auto table_name = [&](uint32_t i) {
    return std::string("t_") + StorageModelName(kModels[i % 4]);
  };
  auto create_tables = [&](Database& db) {
    for (StorageModel model : kModels) {
      ASSERT_TRUE(db.catalog()
                      .CreateTable(std::string("t_") + StorageModelName(model),
                                   Schema({ColumnDef{"id", DataType::kInt,
                                                     false},
                                           ColumnDef{"s", DataType::kText,
                                                     false}}),
                                   model)
                      .ok());
    }
  };
  auto apply_op = [&](Database& db, const Op& op) {
    Table* t = db.catalog().GetTable(table_name(op.table)).ValueOrDie();
    size_t n = t->num_rows();
    Row row{Value::Int(static_cast<int64_t>(op.a % 1000)),
            Value::Text("s" + std::to_string(op.b % 97))};
    switch (op.kind) {
      case 0:
        ASSERT_TRUE(t->AppendRow(std::move(row)).ok());
        break;
      case 1:
        ASSERT_TRUE(t->InsertRowAt(op.c % (n + 1), std::move(row)).ok());
        break;
      case 2:
        if (n > 0) ASSERT_TRUE(t->DeleteRowAt(op.c % n).ok());
        break;
      default:
        if (n > 0) {
          size_t col = op.a % 2;
          Value v = (op.b % 7 == 0)
                        ? Value::Null()
                        : (col == 0
                               ? Value::Int(static_cast<int64_t>(op.b % 1000))
                               : Value::Text("u" + std::to_string(op.b % 97)));
          ASSERT_TRUE(t->UpdateAt(op.c % n, col, std::move(v)).ok());
        }
    }
  };
  // Direct Table-API writes inside a transaction are journaled only for
  // write-latched tables: LOCK TABLE after every BEGIN (the undo journal
  // installs with the latch, not at BEGIN).
  auto lock_all = [&](Database& db) {
    for (StorageModel model : kModels) {
      ASSERT_TRUE(db.Execute(std::string("LOCK TABLE t_") +
                             StorageModelName(model))
                      .ok());
    }
  };
  // variant 0: groups as tagged (autocommit / txn / rolled back).
  // variant 1: every surviving op inside ONE committed transaction, doomed
  //            groups skipped entirely — the shadow's view of the tape.
  auto drive = [&](Database& db, int variant) {
    create_tables(db);
    if (variant == 1) {
      ASSERT_TRUE(db.Execute("BEGIN").ok());
      lock_all(db);
    }
    for (const Group& g : groups) {
      if (variant == 1) {
        if (g.mode != 2) {
          for (const Op& op : g.ops) apply_op(db, op);
        }
        continue;
      }
      if (g.mode == 0) {
        for (const Op& op : g.ops) apply_op(db, op);
      } else {
        ASSERT_TRUE(db.Execute("BEGIN").ok());
        lock_all(db);
        for (const Op& op : g.ops) apply_op(db, op);
        ASSERT_TRUE(db.Execute(g.mode == 2 ? "ROLLBACK" : "COMMIT").ok());
      }
    }
    if (variant == 1) {
      ASSERT_TRUE(db.Execute("COMMIT").ok());
    }
  };
  auto capture = [&](Database& db) {
    std::vector<std::vector<Row>> out;
    for (uint32_t m = 0; m < 4; ++m) {
      Table* t = db.catalog().GetTable(table_name(m)).ValueOrDie();
      std::vector<Row> rows;
      for (size_t r = 0; r < t->num_rows(); ++r) {
        rows.push_back(t->GetRowAt(r).ValueOrDie());
      }
      out.push_back(std::move(rows));
    }
    return out;
  };
  auto expect_equal = [&](const std::vector<std::vector<Row>>& got,
                          const std::vector<std::vector<Row>>& want,
                          const std::string& what) {
    for (size_t m = 0; m < 4; ++m) {
      ASSERT_EQ(got[m].size(), want[m].size()) << what << " model " << m;
      for (size_t r = 0; r < got[m].size(); ++r) {
        for (size_t c = 0; c < got[m][r].size(); ++c) {
          ASSERT_EQ(got[m][r][c], want[m][r][c])
              << what << " model " << m << " row " << r << " col " << c;
          ASSERT_EQ(got[m][r][c].type(), want[m][r][c].type())
              << what << " model " << m << " row " << r << " col " << c;
        }
      }
    }
  };

  // The shadow: scratch database, surviving ops only, no transactions ever.
  Database shadow;
  create_tables(shadow);
  for (const Group& g : groups) {
    if (g.mode == 2) continue;
    for (const Op& op : g.ops) apply_op(shadow, op);
  }
  auto reference = capture(shadow);

  for (size_t cap : {size_t{0}, size_t{64}, size_t{4}}) {
    for (int variant : {0, 1}) {
      std::string base = ::testing::TempDir() + "ds_prop_txn_" +
                         std::to_string(GetParam()) + "_" +
                         std::to_string(cap) + "_" + std::to_string(variant);
      std::remove((base + ".wal").c_str());
      std::remove((base + ".pages").c_str());
      DatabaseOptions options;
      options.pager.max_resident_pages = cap;
      std::string what = "pool " + std::to_string(cap) + " variant " +
                         std::to_string(variant);
      {
        auto db = Database::Open(base, options);
        drive(*db, variant);
        expect_equal(capture(*db), reference, what);
      }  // clean close
      auto db = Database::Open(base, options);
      expect_equal(capture(*db), reference, what + " reopened");
      std::remove((base + ".wal").c_str());
      std::remove((base + ".pages").c_str());
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, TxnTransparencyTest,
                         ::testing::Values(23u, 2317u, 231717u));

// ---------------------------------------------------------------------------
// Invariant 12: concurrency is invisible (DESIGN.md §7). N writer threads,
// each running its own random transaction tape on its own table through its
// own Session, must land in exactly the state of replaying the same tapes
// serially on one session — identical values and types, in display order —
// across every storage model and pool size. Disjoint tables mean the
// partitioned write latches never serialize the threads against each other
// (no wait-die victim can arise), and their txn-id-tagged brackets
// interleave freely in the shared WAL.
// ---------------------------------------------------------------------------

class ConcurrentTxnEquivalenceTest
    : public ::testing::TestWithParam<uint32_t> {};

TEST_P(ConcurrentTxnEquivalenceTest, DisjointWriterTapesMatchSerialReplay) {
  constexpr StorageModel kModels[] = {StorageModel::kRow,
                                      StorageModel::kColumn,
                                      StorageModel::kRcv,
                                      StorageModel::kHybrid};
  struct Txn {
    std::vector<std::string> stmts;
    bool rollback;
  };
  // One SQL tape per thread, each bound to its own table (one per storage
  // model). Generation tracks the live id set — rolled-back transactions
  // restore it — so UPDATE/DELETE always target an existing row: a failing
  // statement would poison its transaction and change the tape's meaning.
  std::vector<std::vector<Txn>> tapes(4);
  std::mt19937 rng(GetParam());
  for (int t = 0; t < 4; ++t) {
    std::string name = std::string("t_") + StorageModelName(kModels[t]);
    std::vector<int> live = {0, 1, 2, 3};  // seeded before the threads start
    int next_id = 4;
    for (int x = 0; x < 8; ++x) {
      Txn txn;
      txn.rollback = rng() % 4 == 0;
      std::vector<int> snapshot = live;
      int stmts = 1 + static_cast<int>(rng() % 4);
      for (int s = 0; s < stmts; ++s) {
        uint32_t k = rng() % 4;
        if (k == 0 || live.empty()) {
          int id = next_id++;
          txn.stmts.push_back("INSERT INTO " + name + " VALUES (" +
                              std::to_string(id) + ", 'i" +
                              std::to_string(rng() % 97) + "')");
          live.push_back(id);
        } else if (k < 3) {
          txn.stmts.push_back(
              "UPDATE " + name + " SET s = 'u" + std::to_string(rng() % 97) +
              "' WHERE id = " + std::to_string(live[rng() % live.size()]));
        } else {
          size_t pos = rng() % live.size();
          txn.stmts.push_back("DELETE FROM " + name +
                              " WHERE id = " + std::to_string(live[pos]));
          live.erase(live.begin() + pos);
        }
      }
      if (txn.rollback) live = std::move(snapshot);
      tapes[t].push_back(std::move(txn));
    }
  }

  auto create_and_seed = [&](Database& db) {
    for (int t = 0; t < 4; ++t) {
      std::string name = std::string("t_") + StorageModelName(kModels[t]);
      ASSERT_TRUE(
          db.catalog()
              .CreateTable(name,
                           Schema({ColumnDef{"id", DataType::kInt, false},
                                   ColumnDef{"s", DataType::kText, false}}),
                           kModels[t])
              .ok());
      for (int i = 0; i < 4; ++i) {
        ASSERT_TRUE(db.Execute("INSERT INTO " + name + " VALUES (" +
                               std::to_string(i) + ", 'seed')")
                        .ok());
      }
    }
  };
  auto replay_txn = [](Session* s, const Txn& txn) {
    auto exec = [&](const std::string& sql) {
      auto r = s->Execute(sql);
      ASSERT_TRUE(r.ok()) << sql << " -> " << r.status().ToString();
    };
    exec("BEGIN");
    for (const std::string& sql : txn.stmts) exec(sql);
    exec(txn.rollback ? "ROLLBACK" : "COMMIT");
  };
  auto capture = [&](Database& db) {
    std::vector<std::vector<Row>> out;
    for (int t = 0; t < 4; ++t) {
      Table* table = db.catalog()
                         .GetTable(std::string("t_") +
                                   StorageModelName(kModels[t]))
                         .ValueOrDie();
      std::vector<Row> rows;
      for (size_t r = 0; r < table->num_rows(); ++r) {
        rows.push_back(table->GetRowAt(r).ValueOrDie());
      }
      out.push_back(std::move(rows));
    }
    return out;
  };
  auto expect_equal = [&](const std::vector<std::vector<Row>>& got,
                          const std::vector<std::vector<Row>>& want,
                          const std::string& what) {
    for (size_t m = 0; m < 4; ++m) {
      ASSERT_EQ(got[m].size(), want[m].size()) << what << " model " << m;
      for (size_t r = 0; r < got[m].size(); ++r) {
        for (size_t c = 0; c < got[m][r].size(); ++c) {
          ASSERT_EQ(got[m][r][c], want[m][r][c])
              << what << " model " << m << " row " << r << " col " << c;
          ASSERT_EQ(got[m][r][c].type(), want[m][r][c].type())
              << what << " model " << m << " row " << r << " col " << c;
        }
      }
    }
  };

  // The reference: the same tapes, one after another, on a single session.
  std::vector<std::vector<Row>> reference;
  {
    Database serial;
    create_and_seed(serial);
    auto session = serial.CreateSession();
    for (int t = 0; t < 4; ++t) {
      for (const Txn& txn : tapes[t]) replay_txn(session.get(), txn);
    }
    reference = capture(serial);
  }

  for (size_t cap : {size_t{0}, size_t{64}, size_t{4}}) {
    std::string base = ::testing::TempDir() + "ds_prop_mw_" +
                       std::to_string(GetParam()) + "_" + std::to_string(cap);
    std::remove((base + ".wal").c_str());
    std::remove((base + ".pages").c_str());
    DatabaseOptions options;
    options.pager.max_resident_pages = cap;
    std::string what = "pool " + std::to_string(cap);
    {
      auto db = Database::Open(base, options);
      create_and_seed(*db);
      std::vector<std::unique_ptr<Session>> sessions;
      for (int t = 0; t < 4; ++t) sessions.push_back(db->CreateSession());
      std::vector<std::thread> threads;
      for (int t = 0; t < 4; ++t) {
        threads.emplace_back([&, t] {
          for (const Txn& txn : tapes[t]) replay_txn(sessions[t].get(), txn);
        });
      }
      for (std::thread& th : threads) th.join();
      ASSERT_FALSE(::testing::Test::HasFailure()) << what;
      expect_equal(capture(*db), reference, what);
    }  // clean close
    auto db = Database::Open(base, options);
    expect_equal(capture(*db), reference, what + " reopened");
    std::remove((base + ".wal").c_str());
    std::remove((base + ".pages").c_str());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ConcurrentTxnEquivalenceTest,
                         ::testing::Values(12u, 1212u, 121212u));

INSTANTIATE_TEST_SUITE_P(Seeds, ParallelTransparencyTest,
                         ::testing::Values(11u, 211u, 3111u));

}  // namespace
}  // namespace dataspread
