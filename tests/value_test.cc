#include <gtest/gtest.h>

#include "types/data_type.h"
#include "types/value.h"

namespace dataspread {
namespace {

TEST(DataTypeTest, Names) {
  EXPECT_STREQ(DataTypeName(DataType::kInt), "INTEGER");
  EXPECT_STREQ(DataTypeName(DataType::kText), "TEXT");
}

TEST(DataTypeTest, FromName) {
  EXPECT_EQ(DataTypeFromName("int"), DataType::kInt);
  EXPECT_EQ(DataTypeFromName("BIGINT"), DataType::kInt);
  EXPECT_EQ(DataTypeFromName("varchar"), DataType::kText);
  EXPECT_EQ(DataTypeFromName("DOUBLE"), DataType::kReal);
  EXPECT_EQ(DataTypeFromName("boolean"), DataType::kBool);
  EXPECT_FALSE(DataTypeFromName("blob").has_value());
}

TEST(DataTypeTest, InferenceLattice) {
  EXPECT_EQ(UnifyForInference(DataType::kNull, DataType::kInt), DataType::kInt);
  EXPECT_EQ(UnifyForInference(DataType::kInt, DataType::kReal), DataType::kReal);
  EXPECT_EQ(UnifyForInference(DataType::kInt, DataType::kText), DataType::kText);
  EXPECT_EQ(UnifyForInference(DataType::kBool, DataType::kInt), DataType::kText);
  EXPECT_EQ(UnifyForInference(DataType::kBool, DataType::kBool), DataType::kBool);
}

TEST(ValueTest, DefaultIsNull) {
  Value v;
  EXPECT_TRUE(v.is_null());
  EXPECT_EQ(v.type(), DataType::kNull);
  EXPECT_EQ(v.ToDisplayString(), "");
}

TEST(ValueTest, TypedConstruction) {
  EXPECT_EQ(Value::Int(5).type(), DataType::kInt);
  EXPECT_EQ(Value::Real(1.5).type(), DataType::kReal);
  EXPECT_EQ(Value::Text("x").type(), DataType::kText);
  EXPECT_EQ(Value::Bool(true).type(), DataType::kBool);
  EXPECT_EQ(Value::Error("#REF!").type(), DataType::kError);
  EXPECT_TRUE(Value::Error("#REF!").is_error());
}

struct UserInputCase {
  const char* input;
  DataType expected;
};

class UserInputTest : public ::testing::TestWithParam<UserInputCase> {};

TEST_P(UserInputTest, DynamicTyping) {
  EXPECT_EQ(Value::FromUserInput(GetParam().input).type(),
            GetParam().expected);
}

INSTANTIATE_TEST_SUITE_P(
    DynamicTyping, UserInputTest,
    ::testing::Values(UserInputCase{"", DataType::kNull},
                      UserInputCase{"   ", DataType::kNull},
                      UserInputCase{"42", DataType::kInt},
                      UserInputCase{"-3", DataType::kInt},
                      UserInputCase{"4.25", DataType::kReal},
                      UserInputCase{"1e3", DataType::kReal},
                      UserInputCase{"true", DataType::kBool},
                      UserInputCase{"FALSE", DataType::kBool},
                      UserInputCase{"hello", DataType::kText},
                      UserInputCase{"12abc", DataType::kText},
                      UserInputCase{"0042", DataType::kInt}));

TEST(ValueTest, CrossTypeNumericEquality) {
  EXPECT_EQ(Value::Int(1), Value::Real(1.0));
  EXPECT_NE(Value::Int(1), Value::Real(1.5));
  EXPECT_EQ(Value::Int(1).Hash(), Value::Real(1.0).Hash());
}

TEST(ValueTest, CompareTotalOrder) {
  // NULL < BOOL < numeric < TEXT < ERROR
  EXPECT_LT(Value::Null(), Value::Bool(false));
  EXPECT_LT(Value::Bool(true), Value::Int(0));
  EXPECT_LT(Value::Int(5), Value::Text("5"));
  EXPECT_LT(Value::Text("z"), Value::Error("#REF!"));
  EXPECT_LT(Value::Int(2), Value::Real(2.5));
  EXPECT_LT(Value::Real(1.5), Value::Int(2));
  EXPECT_LT(Value::Text("abc"), Value::Text("abd"));
}

TEST(ValueTest, AsRealCoercions) {
  EXPECT_DOUBLE_EQ(Value::Int(3).AsReal().value(), 3.0);
  EXPECT_DOUBLE_EQ(Value::Bool(true).AsReal().value(), 1.0);
  EXPECT_FALSE(Value::Text("x").AsReal().ok());
  EXPECT_FALSE(Value::Null().AsReal().ok());
}

TEST(ValueTest, AsIntRequiresIntegral) {
  EXPECT_EQ(Value::Real(4.0).AsInt().value(), 4);
  EXPECT_FALSE(Value::Real(4.5).AsInt().ok());
}

TEST(ValueTest, DisplayFormatting) {
  EXPECT_EQ(Value::Int(42).ToDisplayString(), "42");
  EXPECT_EQ(Value::Real(3.0).ToDisplayString(), "3");
  EXPECT_EQ(Value::Real(2.5).ToDisplayString(), "2.5");
  EXPECT_EQ(Value::Bool(true).ToDisplayString(), "TRUE");
  EXPECT_EQ(Value::Error("#DIV/0!").ToDisplayString(), "#DIV/0!");
}

TEST(ValueTest, SqlLiteralQuoting) {
  EXPECT_EQ(Value::Text("it's").ToSqlLiteral(), "'it''s'");
  EXPECT_EQ(Value::Null().ToSqlLiteral(), "NULL");
  EXPECT_EQ(Value::Int(7).ToSqlLiteral(), "7");
}

TEST(ValueTest, CastBetweenTypes) {
  EXPECT_EQ(Value::Text("42").CastTo(DataType::kInt).value(), Value::Int(42));
  EXPECT_EQ(Value::Int(42).CastTo(DataType::kText).value(), Value::Text("42"));
  EXPECT_EQ(Value::Text("1.5").CastTo(DataType::kReal).value(),
            Value::Real(1.5));
  EXPECT_FALSE(Value::Text("abc").CastTo(DataType::kInt).ok());
  // NULL passes through any cast.
  EXPECT_TRUE(Value::Null().CastTo(DataType::kInt).value().is_null());
  // Errors never cast.
  EXPECT_FALSE(Value::Error("#REF!").CastTo(DataType::kText).ok());
}

TEST(ValueTest, RowHashConsistentWithEquality) {
  Row a{Value::Int(1), Value::Text("x")};
  Row b{Value::Real(1.0), Value::Text("x")};
  EXPECT_TRUE(RowEq{}(a, b));
  EXPECT_EQ(RowHash{}(a), RowHash{}(b));
  Row c{Value::Int(2), Value::Text("x")};
  EXPECT_FALSE(RowEq{}(a, c));
}

}  // namespace
}  // namespace dataspread
