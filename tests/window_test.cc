#include <gtest/gtest.h>

#include "core/dataspread.h"

namespace dataspread {
namespace {

/// Pane semantics (paper §2.2 "Window"): only the visible region burdens the
/// interface; panning pages rows in from the database.
class WindowTest : public ::testing::Test {
 protected:
  WindowTest() {
    DataSpreadOptions opts;
    opts.binding_window = 32;  // small windows make paging observable
    opts.viewport_rows = 10;
    opts.viewport_cols = 6;
    opts.prefetch_margin = 4;
    ds_ = std::make_unique<DataSpread>(opts);
    sheet_ = ds_->AddSheet("S").ValueOrDie();
    EXPECT_TRUE(ds_->Sql("CREATE TABLE big (id INT PRIMARY KEY, v TEXT)").ok());
    Table* table = ds_->db().catalog().GetTable("big").ValueOrDie();
    for (int i = 0; i < 1000; ++i) {
      EXPECT_TRUE(table
                      ->AppendRow({Value::Int(i),
                                   Value::Text("v" + std::to_string(i))})
                      .ok());
    }
  }

  std::unique_ptr<DataSpread> ds_;
  Sheet* sheet_;
};

TEST_F(WindowTest, OnlyWindowMaterialized) {
  ASSERT_TRUE(ds_->ImportTable("S", "A1", "big").ok());
  // First 32 positions materialized; row 500 is not.
  EXPECT_EQ(ds_->GetValueAt(sheet_, 1, 0), Value::Int(0));
  EXPECT_EQ(ds_->GetValueAt(sheet_, 32, 0), Value::Int(31));
  EXPECT_TRUE(ds_->GetValueAt(sheet_, 500, 0).is_null());
  // The sheet holds ~32 rows of cells, not 1000.
  EXPECT_LT(sheet_->cell_count(), 100u);
}

TEST_F(WindowTest, ScrollPagesRowsIn) {
  ASSERT_TRUE(ds_->ImportTable("S", "A1", "big").ok());
  ASSERT_TRUE(ds_->ScrollTo("S", 500, 0).ok());
  // Pane rows 500..509 display table positions 499..508.
  EXPECT_EQ(ds_->GetValueAt(sheet_, 500, 0), Value::Int(499));
  EXPECT_EQ(ds_->GetValueAt(sheet_, 509, 1), Value::Text("v508"));
  // The old window was evicted.
  EXPECT_TRUE(ds_->GetValueAt(sheet_, 1, 0).is_null());
  // Memory stays bounded by the window, not the table.
  EXPECT_LT(sheet_->cell_count(), 200u);
}

TEST_F(WindowTest, ScrollBackAndForth) {
  ASSERT_TRUE(ds_->ImportTable("S", "A1", "big").ok());
  for (int64_t top : {100, 900, 0, 512}) {
    ASSERT_TRUE(ds_->ScrollTo("S", top, 0).ok());
    int64_t probe_row = std::max<int64_t>(top, 1);
    EXPECT_EQ(ds_->GetValueAt(sheet_, probe_row, 0), Value::Int(probe_row - 1))
        << "top=" << top;
  }
}

TEST_F(WindowTest, EditWorksOnPagedInRows) {
  ASSERT_TRUE(ds_->ImportTable("S", "A1", "big").ok());
  ASSERT_TRUE(ds_->ScrollTo("S", 700, 0).ok());
  ASSERT_TRUE(ds_->SetCellAt(sheet_, 700, 1, "edited").ok());
  auto rs = ds_->Sql("SELECT v FROM big WHERE id = 699");
  EXPECT_EQ(rs.value().rows[0][0], Value::Text("edited"));
}

TEST_F(WindowTest, ViewportGeometry) {
  Viewport vp;
  vp.sheet = sheet_;
  vp.top = 10;
  vp.left = 2;
  vp.rows = 5;
  vp.cols = 3;
  EXPECT_TRUE(vp.Intersects(sheet_, 10, 2, 10, 2));
  EXPECT_TRUE(vp.Intersects(sheet_, 0, 0, 100, 100));
  EXPECT_FALSE(vp.Intersects(sheet_, 15, 2, 20, 3));  // below
  EXPECT_FALSE(vp.Intersects(sheet_, 10, 5, 10, 9));  // right
  EXPECT_FALSE(vp.Intersects(nullptr, 10, 2, 10, 2));
}

TEST_F(WindowTest, VisibleRecalcRunsBeforeBackground) {
  // Build many dirty formulas; only the pane ones must be clean after the
  // visible-priority drain step.
  DataSpreadOptions opts;
  opts.auto_pump = false;
  DataSpread ds(opts);
  Sheet* s = ds.AddSheet("S").ValueOrDie();
  for (int r = 0; r < 200; ++r) {
    ASSERT_TRUE(ds.SetCellAt(s, r, 0, std::to_string(r)).ok());
    ASSERT_TRUE(
        ds.SetCellAt(s, r, 1, "=A" + std::to_string(r + 1) + "*2").ok());
  }
  ASSERT_TRUE(ds.ScrollTo("S", 0, 0).ok());
  // Run only the first (visible) task.
  ASSERT_TRUE(ds.scheduler().RunOne());
  EXPECT_EQ(ds.GetValueAt(s, 0, 1), Value::Int(0));
  EXPECT_EQ(ds.GetValueAt(s, 5, 1), Value::Int(10));
  // Off-screen cells are still dirty at this point.
  EXPECT_GT(ds.engine().dirty_count(), 0u);
  ds.Pump();
  EXPECT_EQ(ds.GetValueAt(s, 199, 1), Value::Int(398));
}

TEST_F(WindowTest, WindowMoveCounterAdvances) {
  uint64_t before = ds_->window_manager().window_moves();
  ASSERT_TRUE(ds_->ScrollTo("S", 10, 0).ok());
  ASSERT_TRUE(ds_->ScrollTo("S", 20, 0).ok());
  EXPECT_EQ(ds_->window_manager().window_moves(), before + 2);
}

}  // namespace
}  // namespace dataspread
