#include <gtest/gtest.h>

#include "core/dataspread.h"

namespace dataspread {
namespace {

/// Figure 2c scenarios: two-way synchronization between a bound sheet region
/// and the underlying relational table.
class BindingSyncTest : public ::testing::Test {
 protected:
  BindingSyncTest() {
    sheet_ = ds_.AddSheet("S").ValueOrDie();
    auto r = ds_.Sql(
        "CREATE TABLE people (id INT PRIMARY KEY, name TEXT, age INT)");
    EXPECT_TRUE(r.ok()) << r.status().ToString();
    r = ds_.Sql(
        "INSERT INTO people VALUES (1, 'ann', 30), (2, 'bob', 40), "
        "(3, 'cat', 50)");
    EXPECT_TRUE(r.ok());
  }

  DataSpread ds_;
  Sheet* sheet_;
};

TEST_F(BindingSyncTest, ImportMaterializesHeaderAndData) {
  auto binding = ds_.ImportTable("S", "A1", "people");
  ASSERT_TRUE(binding.ok()) << binding.status().ToString();
  // Header row: the anchor holds the DBTABLE formula whose value is the
  // first column name; the remaining headers are plain cells.
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 0), Value::Text("id"));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 1), Value::Text("name"));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 2), Value::Text("age"));
  // Data rows.
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 0), Value::Int(1));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 1), Value::Text("ann"));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 3, 2), Value::Int(50));
  EXPECT_TRUE(sheet_->GetCell(0, 0)->has_formula());
}

TEST_F(BindingSyncTest, BackEndUpdateRefreshesSheet) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  auto r = ds_.Sql("UPDATE people SET age = 31 WHERE id = 1");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 1, 2), Value::Int(31));
}

TEST_F(BindingSyncTest, BackEndInsertAndDeleteRefreshSheet) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO people VALUES (4, 'dan', 60)").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 4, 1), Value::Text("dan"));
  ASSERT_TRUE(ds_.Sql("DELETE FROM people WHERE id = 2").ok());
  // Row for bob vanished; cat shifted up, dan now at row 3.
  EXPECT_EQ(ds_.GetValueAt(sheet_, 2, 1), Value::Text("cat"));
  EXPECT_EQ(ds_.GetValueAt(sheet_, 3, 1), Value::Text("dan"));
  EXPECT_TRUE(ds_.GetValueAt(sheet_, 4, 1).is_null());
}

TEST_F(BindingSyncTest, FrontEndEditBecomesKeyedUpdate) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  // Edit bob's age on the sheet (row 2 displays id 2).
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 2, 2, "41").ok());
  auto rs = ds_.Sql("SELECT age FROM people WHERE id = 2");
  ASSERT_TRUE(rs.ok());
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(41));
  // And the sheet reflects it after the refresh round-trip.
  EXPECT_EQ(ds_.GetValueAt(sheet_, 2, 2), Value::Int(41));
}

TEST_F(BindingSyncTest, FrontEndEditRejectsTypeViolations) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  // age is INT; writing text must fail and leave the DB untouched.
  EXPECT_FALSE(ds_.SetCellAt(sheet_, 2, 2, "not a number").ok());
  auto rs = ds_.Sql("SELECT age FROM people WHERE id = 2");
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(40));
}

TEST_F(BindingSyncTest, HeaderEditRenamesColumn) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 2, "years").ok());
  auto table = ds_.db().catalog().GetTable("people").ValueOrDie();
  EXPECT_TRUE(table->schema().FindColumn("years").has_value());
  EXPECT_FALSE(table->schema().FindColumn("age").has_value());
}

TEST_F(BindingSyncTest, FormulaInsideBindingRejected) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  EXPECT_FALSE(ds_.SetCellAt(sheet_, 1, 1, "=1+1").ok());
}

TEST_F(BindingSyncTest, SheetFormulasSeeBoundData) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  // SUM over the bound age column (C2:C4 in sheet coordinates).
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 4, "=SUM(C2:C4)").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 4), Value::Real(120.0));
  // A back-end update flows through to the dependent formula (Figure 2c).
  ASSERT_TRUE(ds_.Sql("UPDATE people SET age = 35 WHERE id = 1").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 0, 4), Value::Real(125.0));
}

TEST_F(BindingSyncTest, EditBeyondTableRejected) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  // Row 10 is inside the binding column span but beyond the 3 data rows:
  // not part of the bound region, lands as a plain sheet cell.
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 10, 0, "99").ok());
  EXPECT_EQ(ds_.GetValueAt(sheet_, 10, 0), Value::Int(99));
  auto rs = ds_.Sql("SELECT COUNT(*) FROM people");
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(3));
}

TEST_F(BindingSyncTest, UnbindClearsMaterializedCells) {
  ASSERT_TRUE(ds_.ImportTable("S", "A1", "people").ok());
  auto* binding = ds_.interface_manager().FindBindingAt(sheet_, 1, 0);
  ASSERT_NE(binding, nullptr);
  ASSERT_TRUE(ds_.interface_manager().Unbind(binding->id()).ok());
  EXPECT_TRUE(ds_.GetValueAt(sheet_, 1, 0).is_null());
  EXPECT_TRUE(ds_.GetValueAt(sheet_, 0, 1).is_null());
  // Subsequent edits are plain cells again.
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 1, 0, "7").ok());
  EXPECT_EQ(ds_.Sql("SELECT COUNT(*) FROM people").value().rows[0][0],
            Value::Int(3));
}

TEST_F(BindingSyncTest, PklessTableUsesPositionalUpdates) {
  ASSERT_TRUE(ds_.Sql("CREATE TABLE notes (txt TEXT)").ok());
  ASSERT_TRUE(ds_.Sql("INSERT INTO notes VALUES ('a'), ('b')").ok());
  ASSERT_TRUE(ds_.ImportTable("S", "F1", "notes").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 2, 5, "edited").ok());
  auto rs = ds_.Sql("SELECT txt FROM notes ORDER BY txt");
  ASSERT_EQ(rs.value().num_rows(), 2u);
  EXPECT_EQ(rs.value().rows[1][0], Value::Text("edited"));
}

TEST_F(BindingSyncTest, CreateTableFromRangeExportsAndRoundTrips) {
  // Figure 2b: lay out a small table, export it, then import it elsewhere.
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 6, "city").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 0, 7, "pop").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 1, 6, "oslo").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 1, 7, "700000").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 2, 6, "bergen").ok());
  ASSERT_TRUE(ds_.SetCellAt(sheet_, 2, 7, "285000").ok());
  auto table = ds_.CreateTableFromRange("S", "G1:H3", "cities", "city");
  ASSERT_TRUE(table.ok()) << table.status().ToString();
  EXPECT_EQ(table.value()->num_rows(), 2u);
  EXPECT_EQ(table.value()->schema().primary_key_index().value_or(99), 0u);
  auto rs = ds_.Sql("SELECT pop FROM cities WHERE city = 'oslo'");
  EXPECT_EQ(rs.value().rows[0][0], Value::Int(700000));
}

}  // namespace
}  // namespace dataspread
