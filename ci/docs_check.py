#!/usr/bin/env python3
"""Documentation consistency gate (driven by ci/check.sh).

Two checks, both against the working tree:

1. Bench-field coverage: every JSON field that appears in any committed
   BENCH_*.json line must be documented in README.md's field table — the
   committed benchmark trajectory is only useful if a reader can decode it.

2. Cross-reference resolution: every relative markdown link in README.md,
   DESIGN.md, ROADMAP.md, and docs/*.md must point at a file that exists,
   and README.md must link docs/DURABILITY.md (the user-facing durability
   guide rides shotgun with the engine).

Exits non-zero with a per-problem report; prints one summary line when
clean.
"""
import glob
import json
import os
import re
import sys

ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
problems = []


def check_bench_fields():
    readme = open(os.path.join(ROOT, "README.md"), encoding="utf-8").read()
    fields = set()
    for path in sorted(glob.glob(os.path.join(ROOT, "BENCH_*.json"))):
        with open(path, encoding="utf-8") as f:
            for lineno, line in enumerate(f, 1):
                line = line.strip()
                if not line:
                    continue
                try:
                    fields.update(json.loads(line).keys())
                except json.JSONDecodeError as e:
                    problems.append(f"{os.path.basename(path)}:{lineno}: "
                                    f"unparseable JSON line ({e})")
    for field in sorted(fields):
        # Documented = the field name appears in backticks somewhere in the
        # README (the field table, or prose for bench-specific one-offs).
        if f"`{field}`" not in readme:
            problems.append(f"README.md: BENCH field `{field}` is "
                            "undocumented in the field table")
    return len(fields)


LINK_RE = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def check_cross_references():
    docs = [os.path.join(ROOT, "README.md"), os.path.join(ROOT, "DESIGN.md"),
            os.path.join(ROOT, "ROADMAP.md")]
    docs += sorted(glob.glob(os.path.join(ROOT, "docs", "*.md")))
    n_links = 0
    for doc in docs:
        text = open(doc, encoding="utf-8").read()
        for target in LINK_RE.findall(text):
            if "://" in target or target.startswith("#") or \
               target.startswith("mailto:"):
                continue
            n_links += 1
            rel = target.split("#", 1)[0]
            # Relative to the doc's own directory, falling back to repo root
            # (both styles appear in the tree).
            cand = [os.path.join(os.path.dirname(doc), rel),
                    os.path.join(ROOT, rel)]
            if not any(os.path.exists(c) for c in cand):
                problems.append(f"{os.path.relpath(doc, ROOT)}: link target "
                                f"'{target}' does not resolve")
    readme = open(os.path.join(ROOT, "README.md"), encoding="utf-8").read()
    if "docs/DURABILITY.md" not in readme:
        problems.append("README.md does not link docs/DURABILITY.md")
    return n_links


def main():
    n_fields = check_bench_fields()
    n_links = check_cross_references()
    if problems:
        for p in problems:
            print(f"docs_check: {p}", file=sys.stderr)
        return 1
    print(f"docs_check: {n_fields} bench fields documented, "
          f"{n_links} markdown cross-references resolve")
    return 0


if __name__ == "__main__":
    sys.exit(main())
