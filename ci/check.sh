#!/usr/bin/env bash
# CI gate: configure -> build -> ctest, with warnings-as-errors for the
# storage subsystem (src/storage/ must stay warning-clean; the rest of the
# tree builds with -Wall -Wextra), followed by a low-memory smoke run that
# exercises the bounded buffer pool (eviction + spill) end to end, a perf
# smoke for the scan-resistant eviction policy, a crash-recovery smoke
# (SIGKILL a durable workload, reopen, diff, gate recovery time), a
# catalog-recovery smoke (SIGKILL a durable *database* mid-DDL-stream,
# reopen by path, verify schemas + data), an execution-pipeline perf smoke
# (the vectorized batch pipeline must hold a >= 2x win over the row-at-a-time
# baseline on scan->filter->aggregate at 100k rows; the morsel-parallel leaf
# must hold >= 1.8x over the serial batch pipeline at 4 threads on >= 4-core
# machines, and its 1-thread run must stay within 10% of serial batch), and a
# docs-consistency check (BENCH field coverage + markdown cross-references).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="$(nproc)"

# Scratch area for spill files and bench JSON produced by the smoke run;
# removed on every exit path so CI leaves no artifacts behind.
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/ds-ci-smoke.XXXXXX")"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

cmake -B "${BUILD_DIR}" -S . -DDS_STORAGE_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# ---------------------------------------------------------------------------
# Low-memory smoke: the eviction/spill suite (it pins its own tiny pool
# sizes internally; env vars are not read by tests) plus one storage bench
# forced through a 64-frame pool via DS_MAX_RESIDENT_PAGES. Bench spill
# files land in the scratch dir via DS_SPILL_DIR and are wiped with it.
# ---------------------------------------------------------------------------
if [[ -x "${BUILD_DIR}/eviction_test" ]]; then
  "${BUILD_DIR}/eviction_test" --gtest_brief=1
else
  echo "ci/check.sh: eviction_test not built (GTest missing); skipping test smoke"
fi

if [[ -x "${BUILD_DIR}/bench_storage_models" ]]; then
  DS_MAX_RESIDENT_PAGES=64 DS_SPILL_DIR="${SMOKE_DIR}" \
    DS_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench_storage_models" \
    --benchmark_filter='BM_Storage_FullScan_(Row|Hybrid)/100000' \
    --benchmark_min_time=0.02
else
  echo "ci/check.sh: bench binaries not built; skipping bounded-pool bench smoke"
fi

# ---------------------------------------------------------------------------
# Perf smoke: the mixed scan + hot-point workload behind a 64-frame pool.
# Guards the scan-resistant eviction policy against regressions two ways:
#   1. the scan-resistant run's hot-set faults must stay within a recorded
#      budget (measured ~0-30 at 64 frames; the clock-only baseline sits
#      around 1600), and
#   2. the clock-only baseline must show >= 2x the scan-resistant hot
#      faults, so the A/B itself keeps proving the policy win.
# ---------------------------------------------------------------------------
HOT_FAULTS_BUDGET=200

if [[ -x "${BUILD_DIR}/bench_mixed_workload" ]]; then
  DS_SPILL_DIR="${SMOKE_DIR}" DS_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench_mixed_workload" \
    --benchmark_filter='BM_Mixed_ScanWithHotLookups_Row_(Clock|ScanResistant)' \
    --benchmark_min_time=0.02

  scanres_faults="$(sed -n 's/.*"run":"[^"]*\/scanres".*"hot_faults":\([0-9]*\).*/\1/p' \
    "${SMOKE_DIR}/BENCH_mixed_workload.json" | head -n1)"
  clock_faults="$(sed -n 's/.*"run":"[^"]*\/clock".*"hot_faults":\([0-9]*\).*/\1/p' \
    "${SMOKE_DIR}/BENCH_mixed_workload.json" | head -n1)"
  if [[ -z "${scanres_faults}" || -z "${clock_faults}" ]]; then
    echo "ci/check.sh: could not parse hot_faults from BENCH_mixed_workload.json" >&2
    exit 1
  fi
  echo "ci/check.sh: mixed-workload hot faults: scan-resistant=${scanres_faults}" \
       "clock-only=${clock_faults} (budget ${HOT_FAULTS_BUDGET})"
  if (( scanres_faults > HOT_FAULTS_BUDGET )); then
    echo "ci/check.sh: scan-resistant hot faults ${scanres_faults} exceed the" \
         "budget of ${HOT_FAULTS_BUDGET} — eviction policy regression" >&2
    exit 1
  fi
  floor=$(( scanres_faults > 0 ? scanres_faults : 1 ))
  if (( clock_faults < 2 * floor )); then
    echo "ci/check.sh: clock-only baseline (${clock_faults}) is not >= 2x the" \
         "scan-resistant run (${scanres_faults}) — the policy win disappeared" >&2
    exit 1
  fi
else
  echo "ci/check.sh: bench_mixed_workload not built; skipping eviction perf smoke"
fi

# ---------------------------------------------------------------------------
# Execution-pipeline perf smoke: the same scan->filter->aggregate query at
# 100k rows through the row-at-a-time Volcano baseline and the vectorized
# batch pipeline (both unbounded pool). The batch path's whole reason to
# exist is throughput, so the gate requires row_op_ms >= 2 * batch_op_ms
# (measured ~2.4x on an idle machine; the 2x floor leaves headroom for
# loaded CI runners while still catching a vectorization regression).
# ---------------------------------------------------------------------------
if [[ -x "${BUILD_DIR}/bench_exec_pipeline" ]]; then
  DS_SPILL_DIR="${SMOKE_DIR}" DS_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench_exec_pipeline" \
    --benchmark_filter='BM_ScanFilterAggregate/100000/(0|1)/0/0$' \
    --benchmark_min_time=0.02

  batch_op_ms="$(sed -n 's/.*"run":"ScanFilterAggregate\/batch\/100000".*"op_ms":\([0-9][0-9.e+-]*\),.*/\1/p' \
    "${SMOKE_DIR}/BENCH_exec_pipeline.json" | head -n1)"
  row_op_ms="$(sed -n 's/.*"run":"ScanFilterAggregate\/row\/100000".*"op_ms":\([0-9][0-9.e+-]*\),.*/\1/p' \
    "${SMOKE_DIR}/BENCH_exec_pipeline.json" | head -n1)"
  if [[ -z "${batch_op_ms}" || -z "${row_op_ms}" ]]; then
    echo "ci/check.sh: could not parse op_ms from BENCH_exec_pipeline.json" >&2
    exit 1
  fi
  echo "ci/check.sh: exec pipeline scan-filter-aggregate @100k:" \
       "batch=${batch_op_ms} ms row=${row_op_ms} ms (need >= 2x)"
  if ! awk -v r="${row_op_ms}" -v b="${batch_op_ms}" \
       'BEGIN { exit !(b > 0 && r >= 2 * b) }'; then
    echo "ci/check.sh: batch pipeline (${batch_op_ms} ms) is not >= 2x faster" \
         "than the row pipeline (${row_op_ms} ms) at 100k rows —" \
         "vectorized-execution regression" >&2
    exit 1
  fi
  # -------------------------------------------------------------------------
  # Morsel-parallel gates over the same query. Two checks:
  #   1. par1 (the worker pool at 1 thread, i.e. pure dispenser overhead)
  #      must stay within 10% of the serial batch pipeline — always enforced.
  #   2. par4 must be >= 1.8x faster than serial batch — only meaningful with
  #      real cores underneath, so it is skipped (with a notice) when nproc
  #      reports fewer than 4; single-core CI cannot observe a speedup.
  # -------------------------------------------------------------------------
  DS_SPILL_DIR="${SMOKE_DIR}" DS_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench_exec_pipeline" \
    --benchmark_filter='BM_ScanFilterAggregate/100000/0/0/(1|4)$' \
    --benchmark_min_time=0.02

  par1_op_ms="$(sed -n 's/.*"run":"ScanFilterAggregate\/par1\/100000".*"op_ms":\([0-9][0-9.e+-]*\),.*/\1/p' \
    "${SMOKE_DIR}/BENCH_exec_pipeline.json" | head -n1)"
  par4_op_ms="$(sed -n 's/.*"run":"ScanFilterAggregate\/par4\/100000".*"op_ms":\([0-9][0-9.e+-]*\),.*/\1/p' \
    "${SMOKE_DIR}/BENCH_exec_pipeline.json" | head -n1)"
  if [[ -z "${par1_op_ms}" || -z "${par4_op_ms}" ]]; then
    echo "ci/check.sh: could not parse parallel op_ms from BENCH_exec_pipeline.json" >&2
    exit 1
  fi
  echo "ci/check.sh: morsel-parallel scan-filter-aggregate @100k:" \
       "batch=${batch_op_ms} ms par1=${par1_op_ms} ms par4=${par4_op_ms} ms"
  if ! awk -v b="${batch_op_ms}" -v p="${par1_op_ms}" \
       'BEGIN { exit !(b > 0 && p <= 1.10 * b) }'; then
    echo "ci/check.sh: 1-thread morsel run (${par1_op_ms} ms) is more than 10%" \
         "slower than the serial batch pipeline (${batch_op_ms} ms) —" \
         "dispenser/worker-pool overhead regression" >&2
    exit 1
  fi
  if (( JOBS >= 4 )); then
    if ! awk -v b="${batch_op_ms}" -v p="${par4_op_ms}" \
         'BEGIN { exit !(p > 0 && b >= 1.8 * p) }'; then
      echo "ci/check.sh: 4-thread morsel run (${par4_op_ms} ms) is not >= 1.8x" \
           "faster than the serial batch pipeline (${batch_op_ms} ms) on a" \
           "${JOBS}-core machine — parallel-scan regression" >&2
      exit 1
    fi
  else
    echo "ci/check.sh: only ${JOBS} core(s) visible; skipping the 1.8x @4-thread" \
         "speedup gate (the par1-overhead gate above still ran)"
  fi
else
  echo "ci/check.sh: bench_exec_pipeline not built; skipping exec perf smoke"
fi

# ---------------------------------------------------------------------------
# Recovery smoke: a bounded-pool durable workload is SIGKILLed mid-stream,
# then reopened — recovery must replay the WAL tail, hold every slot that was
# acknowledged (synced) before the kill, and diff clean against the
# deterministic generator. Recovery time is gated against the log size
# (measured ~5 ms/MB; the budget leaves ~20x slack for loaded CI machines).
# ---------------------------------------------------------------------------
if [[ -x "${BUILD_DIR}/recovery_smoke" ]]; then
  RECOVERY_DIR="${SMOKE_DIR}/recovery"
  mkdir -p "${RECOVERY_DIR}"
  "${BUILD_DIR}/recovery_smoke" run "${RECOVERY_DIR}" \
    > "${SMOKE_DIR}/recovery_run.log" 2>&1 &
  smoke_pid=$!
  sleep 2
  kill -9 "${smoke_pid}" 2>/dev/null || true
  wait "${smoke_pid}" 2>/dev/null || true
  min_slots="$(awk '/^synced/{n=$2} END{print n+0}' "${SMOKE_DIR}/recovery_run.log")"
  if (( min_slots == 0 )); then
    echo "ci/check.sh: recovery smoke never reached its first WAL sync" >&2
    exit 1
  fi
  wal_bytes="$(stat -c%s "${RECOVERY_DIR}/smoke.wal")"
  recover_line="$("${BUILD_DIR}/recovery_smoke" recover "${RECOVERY_DIR}" "${min_slots}")"
  echo "ci/check.sh: recovery smoke: ${recover_line}" \
       "(SIGKILL after >=${min_slots} acked slots, log ${wal_bytes} bytes)"
  recovery_ms="$(sed -n 's/.* ms=\([0-9]*\).*/\1/p' <<<"${recover_line}")"
  recovery_budget_ms=$(( 1000 + (wal_bytes / (1024 * 1024) + 1) * 100 ))
  if (( recovery_ms > recovery_budget_ms )); then
    echo "ci/check.sh: recovery took ${recovery_ms} ms for a" \
         "${wal_bytes}-byte log (budget ${recovery_budget_ms} ms) —" \
         "recovery-time regression" >&2
    exit 1
  fi
else
  echo "ci/check.sh: recovery_smoke not built; skipping crash-recovery smoke"
fi

# ---------------------------------------------------------------------------
# Catalog-recovery smoke: a durable *database* (four tables, one per storage
# model) is SIGKILLed mid-stream — with ALTER TABLE DDL statements landing
# every few thousand rows — then reopened by path alone. Recovery must
# rebuild every table, schema, and row with no application-side rebuild:
# at least the acknowledged (synced) rows and the acknowledged DDLs, every
# cell matching the deterministic generator (pre-DDL rows carry the column
# default). The recovery time is gated against the log size like the
# page-level smoke above.
# ---------------------------------------------------------------------------
if [[ -x "${BUILD_DIR}/catalog_smoke" ]]; then
  CATALOG_DIR="${SMOKE_DIR}/catalog"
  mkdir -p "${CATALOG_DIR}"
  "${BUILD_DIR}/catalog_smoke" run "${CATALOG_DIR}/db" \
    > "${SMOKE_DIR}/catalog_run.log" 2>&1 &
  catalog_pid=$!
  # Kill once the workload has provably passed its first DDL + a later sync
  # (polling, not a fixed sleep: the gate must not depend on machine speed),
  # with a generous ceiling for badly loaded runners.
  for _ in $(seq 1 120); do
    if grep -q '^ddl' "${SMOKE_DIR}/catalog_run.log" 2>/dev/null &&
       [[ "$(tail -n1 "${SMOKE_DIR}/catalog_run.log" 2>/dev/null)" == synced* ]]; then
      break
    fi
    sleep 0.5
  done
  kill -9 "${catalog_pid}" 2>/dev/null || true
  wait "${catalog_pid}" 2>/dev/null || true
  min_rows="$(awk '/^synced/{n=$2} END{print n+0}' "${SMOKE_DIR}/catalog_run.log")"
  min_ddl="$(awk '/^ddl/{n=$2} END{print n+0}' "${SMOKE_DIR}/catalog_run.log")"
  if (( min_rows == 0 || min_ddl == 0 )); then
    echo "ci/check.sh: catalog smoke never reached its first sync/DDL" >&2
    exit 1
  fi
  catalog_wal_bytes="$(stat -c%s "${CATALOG_DIR}/db.wal")"
  catalog_line="$("${BUILD_DIR}/catalog_smoke" recover "${CATALOG_DIR}/db" \
    "${min_rows}" "${min_ddl}")"
  echo "ci/check.sh: catalog smoke: ${catalog_line}" \
       "(SIGKILL after >=${min_rows} rows + ${min_ddl} DDLs," \
       "log ${catalog_wal_bytes} bytes)"
  catalog_ms="$(sed -n 's/.* ms=\([0-9]*\).*/\1/p' <<<"${catalog_line}")"
  catalog_budget_ms=$(( 2000 + (catalog_wal_bytes / (1024 * 1024) + 1) * 100 ))
  if (( catalog_ms > catalog_budget_ms )); then
    echo "ci/check.sh: catalog recovery took ${catalog_ms} ms for a" \
         "${catalog_wal_bytes}-byte log (budget ${catalog_budget_ms} ms) —" \
         "recovery-time regression" >&2
    exit 1
  fi
else
  echo "ci/check.sh: catalog_smoke not built; skipping catalog-recovery smoke"
fi

# ---------------------------------------------------------------------------
# Transaction-rollback smoke: one writer streams BEGIN..COMMIT / ROLLBACK
# transactions (every third rolled back and retried) with sync-on-commit,
# then is SIGKILLed mid-stream — often mid-transaction or mid-rollback.
# Reopening by path must surface exactly a committed-transaction prefix:
# every acknowledged COMMIT present, a whole number of transactions, and no
# trace of any rolled-back or open batch.
# ---------------------------------------------------------------------------
if [[ -x "${BUILD_DIR}/catalog_smoke" ]]; then
  TXN_DIR="${SMOKE_DIR}/txn"
  mkdir -p "${TXN_DIR}"
  "${BUILD_DIR}/catalog_smoke" txn-run "${TXN_DIR}/db" \
    > "${SMOKE_DIR}/txn_run.log" 2>&1 &
  txn_pid=$!
  # Kill only after several durable COMMITs (and, by the every-third cadence,
  # at least one ROLLBACK) have provably happened — polling, not a fixed
  # sleep, so the gate does not depend on machine speed.
  for _ in $(seq 1 120); do
    commits="$(awk '/^committed/{n++} END{print n+0}' \
      "${SMOKE_DIR}/txn_run.log" 2>/dev/null || true)"
    if (( ${commits:-0} >= 5 )); then
      break
    fi
    sleep 0.5
  done
  kill -9 "${txn_pid}" 2>/dev/null || true
  wait "${txn_pid}" 2>/dev/null || true
  min_txn_rows="$(awk '/^committed/{n=$2} END{print n+0}' "${SMOKE_DIR}/txn_run.log")"
  if (( min_txn_rows == 0 )); then
    echo "ci/check.sh: txn smoke never reached its first durable COMMIT" >&2
    exit 1
  fi
  txn_line="$("${BUILD_DIR}/catalog_smoke" txn-recover "${TXN_DIR}/db" "${min_txn_rows}")"
  echo "ci/check.sh: txn smoke: ${txn_line}" \
       "(SIGKILL after >=${min_txn_rows} committed rows)"
else
  echo "ci/check.sh: catalog_smoke not built; skipping transaction-rollback smoke"
fi

# ---------------------------------------------------------------------------
# Group-commit perf gate: concurrent committers batching onto one leader
# fsync (Pager::SyncWalThrough / Wal::SyncThrough) must sustain >= 2x the
# committed-statements/s of the fsync-per-commit baseline at 8 committer
# threads (measured ~3x; the 2x floor leaves headroom for loaded runners
# while still catching a commit-batching regression). The pager-level A/B
# isolates the barrier mechanism; bench_txn's SQL-level pair is trajectory
# context only.
# ---------------------------------------------------------------------------
if [[ -x "${BUILD_DIR}/bench_txn" ]]; then
  DS_SPILL_DIR="${SMOKE_DIR}" DS_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench_txn" \
    --benchmark_filter='BM_Txn_PagerCommit_(Serial|Group)/8' \
    --benchmark_min_time=0.05
  serial_cps="$(sed -n 's/.*"run":"PagerCommit\/serial\/t8".*"commits_per_sec":\([0-9][0-9.e+-]*\).*/\1/p' \
    "${SMOKE_DIR}/BENCH_txn.json" | head -n1)"
  group_cps="$(sed -n 's/.*"run":"PagerCommit\/group\/t8".*"commits_per_sec":\([0-9][0-9.e+-]*\).*/\1/p' \
    "${SMOKE_DIR}/BENCH_txn.json" | head -n1)"
  if [[ -z "${serial_cps}" || -z "${group_cps}" ]]; then
    echo "ci/check.sh: could not parse commits_per_sec from BENCH_txn.json" >&2
    exit 1
  fi
  echo "ci/check.sh: group commit @8 threads: group=${group_cps} serial=${serial_cps}" \
       "commits/s (need >= 2x)"
  if ! awk -v g="${group_cps}" -v s="${serial_cps}" \
       'BEGIN { exit !(s > 0 && g >= 2 * s) }'; then
    echo "ci/check.sh: group commit (${group_cps} commits/s) is not >= 2x the" \
         "fsync-per-commit baseline (${serial_cps} commits/s) —" \
         "commit-batching regression" >&2
    exit 1
  fi

  # -------------------------------------------------------------------------
  # Multi-statement transaction gate: grouping K=8 statements under one
  # BEGIN..COMMIT fsync must sustain >= 1.5x the committed statements/s of
  # K=1 autocommit (measured ~2-4x; the 1.5x floor leaves headroom for
  # loaded runners while still catching a statement-batching regression).
  # -------------------------------------------------------------------------
  DS_SPILL_DIR="${SMOKE_DIR}" DS_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench_txn" \
    --benchmark_filter='BM_Txn_Multi/(1|8)/' \
    --benchmark_min_time=0.05
  k1_sps="$(sed -n 's/.*"run":"Multi\/k1".*"statements_per_sec":\([0-9][0-9.e+-]*\).*/\1/p' \
    "${SMOKE_DIR}/BENCH_txn.json" | head -n1)"
  k8_sps="$(sed -n 's/.*"run":"Multi\/k8".*"statements_per_sec":\([0-9][0-9.e+-]*\).*/\1/p' \
    "${SMOKE_DIR}/BENCH_txn.json" | head -n1)"
  if [[ -z "${k1_sps}" || -z "${k8_sps}" ]]; then
    echo "ci/check.sh: could not parse statements_per_sec from BENCH_txn.json" >&2
    exit 1
  fi
  echo "ci/check.sh: multi-statement txns: k8=${k8_sps} k1=${k1_sps}" \
       "statements/s (need >= 1.5x)"
  if ! awk -v a="${k8_sps}" -v b="${k1_sps}" \
       'BEGIN { exit !(b > 0 && a >= 1.5 * b) }'; then
    echo "ci/check.sh: K=8 statement batching (${k8_sps} statements/s) is not" \
         ">= 1.5x the K=1 autocommit baseline (${k1_sps} statements/s) —" \
         "multi-statement-transaction regression" >&2
    exit 1
  fi

  # -------------------------------------------------------------------------
  # Multi-writer gate (partitioned write latches, DESIGN.md §7): 4 writer
  # sessions on disjoint tables must sustain >= 2x the committed
  # statements/s of a single writer — the point of per-table latching is
  # that disjoint transactions proceed fully in parallel, with group commit
  # batching their fsyncs. Only meaningful with real cores underneath, so
  # skipped (with a notice) when nproc reports fewer than 4; the contended
  # runs land in BENCH_txn.json as trajectory context either way.
  # -------------------------------------------------------------------------
  DS_SPILL_DIR="${SMOKE_DIR}" DS_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench_txn" \
    --benchmark_filter='BM_Txn_MultiWriter_(Disjoint|Contended)/(1|2|4)/' \
    --benchmark_min_time=0.05
  w1_sps="$(sed -n 's/.*"run":"MultiWriter\/disjoint\/w1".*"statements_per_sec":\([0-9][0-9.e+-]*\).*/\1/p' \
    "${SMOKE_DIR}/BENCH_txn.json" | head -n1)"
  w4_sps="$(sed -n 's/.*"run":"MultiWriter\/disjoint\/w4".*"statements_per_sec":\([0-9][0-9.e+-]*\).*/\1/p' \
    "${SMOKE_DIR}/BENCH_txn.json" | head -n1)"
  if [[ -z "${w1_sps}" || -z "${w4_sps}" ]]; then
    echo "ci/check.sh: could not parse MultiWriter statements_per_sec from BENCH_txn.json" >&2
    exit 1
  fi
  echo "ci/check.sh: multi-writer txns: disjoint w4=${w4_sps} w1=${w1_sps}" \
       "statements/s"
  if (( JOBS >= 4 )); then
    if ! awk -v a="${w4_sps}" -v b="${w1_sps}" \
         'BEGIN { exit !(b > 0 && a >= 2 * b) }'; then
      echo "ci/check.sh: 4 disjoint writers (${w4_sps} statements/s) are not" \
           ">= 2x one writer (${w1_sps} statements/s) on a ${JOBS}-core" \
           "machine — write-latch partitioning regression" >&2
      exit 1
    fi
  else
    echo "ci/check.sh: only ${JOBS} core(s) visible; skipping the 2x @4-writer" \
         "scaling gate (the multi-writer numbers were still recorded)"
  fi
else
  echo "ci/check.sh: bench_txn not built; skipping group-commit perf gate"
fi

# ---------------------------------------------------------------------------
# ThreadSanitizer: the concurrency suite (N reader cursors + 1 writer over a
# bounded pool, group commit, disjoint + contending multi-writer sessions
# over the partitioned write latches, the double-open lock) rebuilt with
# -fsanitize=thread. The value assertions prove consistency; TSan proves the
# pager's latching and the per-table write-latch table underneath are
# race-free.
# ---------------------------------------------------------------------------
TSAN_BUILD_DIR="${TSAN_BUILD_DIR:-build-tsan}"
cmake -B "${TSAN_BUILD_DIR}" -S . \
  -DCMAKE_CXX_FLAGS="-fsanitize=thread -fno-omit-frame-pointer" \
  -DCMAKE_EXE_LINKER_FLAGS="-fsanitize=thread"
if cmake --build "${TSAN_BUILD_DIR}" -j "${JOBS}" --target concurrency_test \
     2>/dev/null; then
  TSAN_OPTIONS="halt_on_error=1" "${TSAN_BUILD_DIR}/concurrency_test" \
    --gtest_brief=1
else
  echo "ci/check.sh: concurrency_test not built under TSan (GTest missing?); skipping"
fi

# ---------------------------------------------------------------------------
# Docs consistency: every BENCH_*.json field must be documented in README's
# field table, and every relative markdown link in README/DESIGN/ROADMAP/
# docs/ must resolve (incl. the README -> docs/DURABILITY.md pointer).
# ---------------------------------------------------------------------------
if command -v python3 >/dev/null 2>&1; then
  python3 ci/docs_check.py
else
  echo "ci/check.sh: python3 not found; skipping docs consistency check"
fi

# The smoke run must not leak spill files outside its scratch dir, and ctest
# itself uses anonymous temp files only: the repo tree stays clean.
if compgen -G "ds-bench-spill-*" >/dev/null || compgen -G "BENCH_*.json.tmp" >/dev/null; then
  echo "ci/check.sh: stray spill/bench artifacts in the repo tree" >&2
  exit 1
fi

echo "ci/check.sh: configure + build + ctest + smokes + docs check all green"
