#!/usr/bin/env bash
# CI gate: configure -> build -> ctest, with warnings-as-errors for the
# storage subsystem (src/storage/ must stay warning-clean; the rest of the
# tree builds with -Wall -Wextra), followed by a low-memory smoke run that
# exercises the bounded buffer pool (eviction + spill) end to end.
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="$(nproc)"

# Scratch area for spill files and bench JSON produced by the smoke run;
# removed on every exit path so CI leaves no artifacts behind.
SMOKE_DIR="$(mktemp -d "${TMPDIR:-/tmp}/ds-ci-smoke.XXXXXX")"
trap 'rm -rf "${SMOKE_DIR}"' EXIT

cmake -B "${BUILD_DIR}" -S . -DDS_STORAGE_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

# ---------------------------------------------------------------------------
# Low-memory smoke: the eviction/spill suite (it pins its own tiny pool
# sizes internally; env vars are not read by tests) plus one storage bench
# forced through a 64-frame pool via DS_MAX_RESIDENT_PAGES. Bench spill
# files land in the scratch dir via DS_SPILL_DIR and are wiped with it.
# ---------------------------------------------------------------------------
if [[ -x "${BUILD_DIR}/eviction_test" ]]; then
  "${BUILD_DIR}/eviction_test" --gtest_brief=1
else
  echo "ci/check.sh: eviction_test not built (GTest missing); skipping test smoke"
fi

if [[ -x "${BUILD_DIR}/bench_storage_models" ]]; then
  DS_MAX_RESIDENT_PAGES=64 DS_SPILL_DIR="${SMOKE_DIR}" \
    DS_BENCH_JSON_DIR="${SMOKE_DIR}" \
    "${BUILD_DIR}/bench_storage_models" \
    --benchmark_filter='BM_Storage_FullScan_(Row|Hybrid)/100000' \
    --benchmark_min_time=0.02
else
  echo "ci/check.sh: bench binaries not built; skipping bounded-pool bench smoke"
fi

# The smoke run must not leak spill files outside its scratch dir, and ctest
# itself uses anonymous temp files only: the repo tree stays clean.
if compgen -G "ds-bench-spill-*" >/dev/null || compgen -G "BENCH_*.json.tmp" >/dev/null; then
  echo "ci/check.sh: stray spill/bench artifacts in the repo tree" >&2
  exit 1
fi

echo "ci/check.sh: configure + build + ctest + low-memory smoke all green"
