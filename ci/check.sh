#!/usr/bin/env bash
# CI gate: configure -> build -> ctest, with warnings-as-errors for the
# storage subsystem (src/storage/ must stay warning-clean; the rest of the
# tree builds with -Wall -Wextra).
set -euo pipefail

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build-ci}"
JOBS="$(nproc)"

cmake -B "${BUILD_DIR}" -S . -DDS_STORAGE_WERROR=ON
cmake --build "${BUILD_DIR}" -j "${JOBS}"
ctest --test-dir "${BUILD_DIR}" --output-on-failure -j "${JOBS}"

echo "ci/check.sh: configure + build + ctest all green"
